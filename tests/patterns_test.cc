/**
 * @file
 * Unit tests for the workload pattern library: the bump allocator,
 * scaling helpers, op emitters, placement kernels, and the DistArray
 * page-distribution machinery (including the chunk/CTA alignment that
 * first-touch placement relies on).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "gpu/simulator.hh"
#include "trace/patterns.hh"

namespace hmg
{
namespace
{

using trace::DistArray;
using trace::GenContext;
using trace::Warp;

constexpr std::uint64_t kPage = 2ull * 1024 * 1024;

TEST(GenContext, AllocatorIsPageAlignedAndDisjoint)
{
    GenContext ctx;
    Addr a = ctx.alloc(100);
    Addr b = ctx.alloc(3 * kPage + 1);
    Addr c = ctx.alloc(1);
    EXPECT_EQ(a % kPage, 0u);
    EXPECT_EQ(b % kPage, 0u);
    EXPECT_EQ(c % kPage, 0u);
    EXPECT_GE(b, a + kPage);
    EXPECT_GE(c, b + 4 * kPage);
}

TEST(GenContext, ScaleHelpers)
{
    GenContext half(0.5);
    EXPECT_EQ(half.scaleN(8), 4u);
    EXPECT_EQ(half.scaleN(1), 1u);       // clamped to min
    EXPECT_EQ(half.scaleN(8, 6), 6u);    // custom clamp
    EXPECT_EQ(half.scaleBytes(1024), 512u);
    EXPECT_EQ(half.scaleBytes(10), 128u); // at least one line
}

TEST(GenContext, EmitHelpers)
{
    GenContext ctx;
    Warp w;
    ctx.loadStream(w, 0, 2, 3, 1);
    ASSERT_EQ(w.ops.size(), 3u);
    EXPECT_EQ(w.ops[0].addr, 2u * 128);
    EXPECT_EQ(w.ops[2].addr, 4u * 128);
    EXPECT_EQ(w.ops[0].type, MemOpType::Load);

    ctx.storeStream(w, 0, 0, 2, 1);
    EXPECT_EQ(w.ops.size(), 5u);
    EXPECT_EQ(w.ops[3].type, MemOpType::Store);

    ctx.loadStrided(w, 0, 0, 4, 8, 1);
    EXPECT_EQ(w.ops[6].addr, 8u * 128);

    ctx.loadRandom(w, 0, 64 * 128, 10, 1);
    ctx.loadSkewed(w, 0, 64 * 128, 10, 1);
    EXPECT_EQ(w.ops.size(), 29u);
    for (const auto &op : w.ops)
        EXPECT_LT(op.addr, 64u * 128);
}

TEST(DistArrayTest, ChunksArePageAlignedAndDisjoint)
{
    GenContext ctx;
    DistArray a = trace::allocDist(ctx, 512 * 1024, 16); // tiny array
    EXPECT_EQ(a.chunks, 16u);
    EXPECT_EQ(a.chunkSpanBytes % kPage, 0u);
    std::set<std::uint64_t> pages;
    for (std::uint64_t i = 0; i < a.lines(); ++i)
        pages.insert(a.line(i) / kPage);
    // Every chunk lives on its own page even though the raw array is
    // far smaller than 16 pages.
    EXPECT_EQ(pages.size(), 16u);
}

TEST(DistArrayTest, BlockMapping)
{
    GenContext ctx;
    DistArray a = trace::allocDist(ctx, 16 * 2 * kPage, 16);
    const std::uint64_t per_chunk = a.chunkLines;
    // Line i sits in chunk i / chunkLines.
    EXPECT_EQ(a.line(0) / a.chunkSpanBytes,
              a.line(per_chunk - 1) / a.chunkSpanBytes);
    EXPECT_NE(a.line(per_chunk - 1) / a.chunkSpanBytes,
              (a.line(per_chunk) - a.base) / a.chunkSpanBytes + 0);
    // Wraps modulo the total size.
    EXPECT_EQ(a.line(a.lines()), a.line(0));
}

TEST(DistArrayTest, PlacementLandsChunksOnOwningGpms)
{
    // End-to-end: place a DistArray via a placement kernel on the real
    // machine and check each chunk's page is homed on the GPM that owns
    // the corresponding CTA block.
    SystemConfig cfg;
    GenContext ctx;
    DistArray arr = trace::allocDist(ctx, 4 * 1024 * 1024, 16);

    trace::Trace t;
    t.name = "placement-check";
    trace::Kernel place = trace::makePlacementKernel(768);
    trace::placeDist(place, ctx, arr, 0, 768);
    t.kernels.push_back(std::move(place));

    Simulator sim(cfg);
    sim.run(t);

    for (std::uint32_t c = 0; c < 16; ++c) {
        Addr chunk_base = arr.base + c * arr.chunkSpanBytes;
        ASSERT_TRUE(sim.system().pageTable().isPlaced(chunk_base));
        EXPECT_EQ(sim.system().pageTable().homeOf(chunk_base), c)
            << "chunk " << c;
    }
}

TEST(PlacementKernel, OneStorePerPage)
{
    GenContext ctx;
    Addr base = ctx.alloc(5 * kPage);
    trace::Kernel k = trace::makePlacementKernel(64);
    trace::placeContiguous(k, ctx, base, 5 * kPage, 0, 64);
    std::uint64_t stores = 0;
    std::set<Addr> pages;
    for (const auto &cta : k.ctas)
        for (const auto &w : cta.warps)
            for (const auto &op : w.ops) {
                EXPECT_EQ(op.type, MemOpType::Store);
                pages.insert(op.addr / kPage);
                ++stores;
            }
    EXPECT_EQ(stores, 5u);
    EXPECT_EQ(pages.size(), 5u);
}

TEST(PlacementKernel, BroadcastSpanPinsToOneCta)
{
    GenContext ctx;
    Addr base = ctx.alloc(4 * kPage);
    trace::Kernel k = trace::makePlacementKernel(64);
    trace::placeContiguous(k, ctx, base, 4 * kPage, 0, 1);
    for (std::size_t c = 1; c < k.ctas.size(); ++c)
        EXPECT_TRUE(k.ctas[c].warps[0].ops.empty());
    EXPECT_EQ(k.ctas[0].warps[0].ops.size(), 4u);
}

TEST(WarpBuilder, FlagsAndScopes)
{
    Warp w;
    w.ld(0, 1, Scope::Gpu, true)
        .st(128, 2, Scope::Sys, true)
        .atom(256, Scope::Gpu, 3)
        .acqFence(Scope::Sys)
        .relFence(Scope::Gpu);
    ASSERT_EQ(w.ops.size(), 5u);
    EXPECT_TRUE(w.ops[0].acq);
    EXPECT_EQ(w.ops[0].scope, Scope::Gpu);
    EXPECT_TRUE(w.ops[1].rel);
    EXPECT_EQ(w.ops[2].type, MemOpType::Atomic);
    EXPECT_EQ(w.ops[3].type, MemOpType::AcqFence);
    EXPECT_EQ(w.ops[4].type, MemOpType::RelFence);
}

} // namespace
} // namespace hmg
