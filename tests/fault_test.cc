/**
 * @file
 * Fault-injection and watchdog tests (DESIGN.md §11).
 *
 * Three families:
 *
 *  1. differential — the fault layer is always compiled in, so an
 *     *inactive* FaultConfig must be perfectly invisible: serial,
 *     deterministic-merge and SweepRunner runs produce bit-identical
 *     full statistic maps with zero `noc.fault.*` keys. An *active*
 *     plan must still be deterministic: serial and deterministic-merge
 *     replay the identical fault history bit for bit.
 *
 *  2. recovery — under heavy transient loss the retry sublayer keeps
 *     the protocol engines oblivious: the MP litmus completes under
 *     the runtime coherence checker with retransmits accounted.
 *
 *  3. watchdog — a permanent link failure turns a silent hang into a
 *     SimHang carrying a structured diagnostic, and a SweepRunner
 *     isolates the wedged cell as degraded instead of dying.
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "sim/sweep.hh"
#include "sim/watchdog.hh"
#include "trace/workloads.hh"

namespace hmg
{
namespace
{

constexpr Addr kData = 0x000000; // page 0
constexpr Addr kFlag = 0x200000; // page 1
constexpr Addr kPriv = 0x800000; // per-GPM private pages

SystemConfig
faultConfig()
{
    SystemConfig cfg; // Table II defaults: 4 GPUs x 4 GPMs
    cfg.checkCoherence = true;
    return cfg;
}

/** The message-passing litmus shape of tests/pdes_test.cc: writer
 *  stores DATA, releases at `scope`, stores FLAG; reader acquire-loads
 *  FLAG then reloads DATA; every other GPM pins itself on a private
 *  page so CTA placement is exact. */
trace::Trace
mpTrace(const SystemConfig &cfg, GpmId writer, GpmId reader, Scope scope,
        GpmId data_home, GpmId flag_home)
{
    const std::uint32_t n = cfg.totalGpms();
    auto priv = [](GpmId g) { return kPriv + Addr{g} * 0x200000; };

    trace::Trace t;
    t.name = "mp_fault";
    for (int k = 0; k < 3; ++k) {
        trace::Kernel kern;
        kern.name = "k" + std::to_string(k);
        for (GpmId g = 0; g < n; ++g) {
            trace::Warp w;
            if (k == 0) {
                w.ld(priv(g));
                if (g == data_home)
                    w.ld(kData, /*delay=*/4);
                if (g == flag_home)
                    w.ld(kFlag, /*delay=*/8);
            } else if (k == 1) {
                if (g == reader)
                    w.ld(kData);
                else
                    w.ld(priv(g));
            } else {
                if (g == writer) {
                    w.st(kData);
                    w.relFence(scope, /*delay=*/2);
                    w.st(kFlag, /*delay=*/2);
                } else if (g == reader) {
                    w.ld(kFlag, /*delay=*/4000, scope,
                         /*acquire=*/true);
                    w.ld(kData, /*delay=*/2);
                } else {
                    w.ld(priv(g));
                }
            }
            trace::Cta cta;
            cta.warps.push_back(std::move(w));
            kern.ctas.push_back(std::move(cta));
        }
        t.kernels.push_back(std::move(kern));
    }
    return t;
}

SimResult
runMode(const SystemConfig &base, const trace::Trace &t,
        std::uint32_t lp_jobs, bool deterministic)
{
    SystemConfig cfg = base;
    cfg.lpJobs = lp_jobs;
    cfg.lpDeterministic = deterministic;
    Simulator sim(cfg);
    return sim.run(t);
}

void
expectSameStats(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    const auto &sa = a.stats.all();
    const auto &sb = b.stats.all();
    ASSERT_EQ(sa.size(), sb.size());
    auto ib = sb.begin();
    for (const auto &[k, v] : sa) {
        EXPECT_EQ(k, ib->first);
        EXPECT_EQ(v, ib->second) << "stat '" << k << "' diverged";
        ++ib;
    }
}

// ----------------------------------------------------- differential

TEST(FaultDifferential, InactivePlanIsInvisible)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);

    const SimResult serial = runMode(cfg, t, 1, false);
    const SimResult det = runMode(cfg, t, 4, true);
    expectSameStats(serial, det);

    // An inactive FaultConfig must add zero stat keys: the seed
    // baselines (BENCH_engine.json, figure scripts) stay bit-identical.
    for (const auto &[k, v] : serial.stats.all())
        EXPECT_EQ(k.find("noc.fault"), std::string::npos)
            << "unexpected fault stat '" << k << "' on inactive plan";
}

TEST(FaultDifferential, InactivePlanWorkloadAndSweepAgree)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    const auto t = trace::workloads::make("bfs", 0.05);

    const SimResult serial = runMode(cfg, t, 1, false);
    const SimResult det = runMode(cfg, t, 4, true);
    expectSameStats(serial, det);

    // The same cell twice through the sweep pool: both land identical
    // to the direct run (nothing shared, nothing degraded).
    SweepCell cell{"bfs", cfg, 0.05, 1};
    SweepRunner runner(2);
    const auto results = runner.run({cell, cell});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.degraded);
        expectSameStats(serial, r);
    }
}

TEST(FaultDifferential, ActivePlanSerialVsDetMergeBitIdentical)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    cfg.fault.seed = 9;
    cfg.fault.dropProb = 0.01;
    cfg.fault.delayProb = 0.01;
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);

    // Same total event order => same per-link RNG draw sequence => the
    // fault history itself is deterministic across engine modes.
    const SimResult serial = runMode(cfg, t, 1, false);
    const SimResult det = runMode(cfg, t, 4, true);
    expectSameStats(serial, det);
    EXPECT_GT(serial.stats.get("noc.fault.total.attempts"), 0.0);
}

TEST(FaultDifferential, SameSeedSameHistoryDifferentSeedDiverges)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Nhcc;
    cfg.fault.seed = 5;
    cfg.fault.dropProb = 0.05;
    const auto t = mpTrace(cfg, 0, 8, Scope::Sys, 0, 6);

    const SimResult a = runMode(cfg, t, 1, false);
    const SimResult b = runMode(cfg, t, 1, false);
    expectSameStats(a, b);

    SystemConfig other = cfg;
    other.fault.seed = 6;
    const SimResult c = runMode(other, t, 1, false);
    // Different seed, different fault history. Compare the loss count
    // rather than cycles: cycle counts could coincide.
    EXPECT_TRUE(a.stats.get("noc.fault.total.drops") !=
                    c.stats.get("noc.fault.total.drops") ||
                a.cycles != c.cycles);
}

// --------------------------------------------------------- recovery

TEST(FaultRecovery, HeavyLossCompletesUnderChecker)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    cfg.fault.seed = 3;
    cfg.fault.dropProb = 0.15;
    cfg.fault.corruptProb = 0.05;
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);

    // One in five transmissions fails, yet the protocol engines never
    // notice: the run completes (no SimHang from the auto-armed
    // watchdog), the coherence checker stays quiet, and the sublayer
    // accounts every retransmission.
    const SimResult res = runMode(cfg, t, 1, false);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.stats.get("noc.fault.total.retransmits"), 0.0);
    EXPECT_GT(res.stats.get("noc.fault.total.recoveries"), 0.0);
    EXPECT_GE(res.stats.get("noc.fault.total.retransmits"),
              res.stats.get("noc.fault.total.drops"));
}

TEST(FaultRecovery, TransientFlapRecovers)
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    cfg.fault.flaps.push_back(
        LinkFlap{/*gpu=*/1, /*egress=*/true, /*downAt=*/2000,
                 /*upAt=*/6000});
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);

    const SimResult res = runMode(cfg, t, 1, false);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.stats.get("noc.fault.total.flap_drops"), 0.0);
    EXPECT_GT(res.stats.get("noc.fault.total.recovery_episodes"), 0.0);
}

// --------------------------------------------------------- watchdog

SystemConfig
wedgedConfig()
{
    SystemConfig cfg = faultConfig();
    cfg.protocol = Protocol::Hmg;
    // GPU1's egress link dies at tick 1000 and never comes back; the
    // small threshold keeps the test fast.
    cfg.fault.flaps.push_back(
        LinkFlap{/*gpu=*/1, /*egress=*/true, /*downAt=*/1000,
                 /*upAt=*/0});
    cfg.watchdogCycles = 50000;
    return cfg;
}

TEST(Watchdog, PermanentLinkFailureTripsWithDiagnostic)
{
    const SystemConfig cfg = wedgedConfig();
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);
    try {
        Simulator sim(cfg);
        (void)sim.run(t);
        FAIL() << "expected SimHang";
    } catch (const SimHang &h) {
        EXPECT_NE(std::string(h.what()).find("no progress"),
                  std::string::npos)
            << h.what();
        const std::string &d = h.diagnostic();
        ASSERT_FALSE(d.empty());
        EXPECT_NE(d.find("watchdog"), std::string::npos) << d;
        EXPECT_NE(d.find("DOWN"), std::string::npos) << d;
        EXPECT_NE(d.find("port"), std::string::npos) << d;
    }
}

TEST(Watchdog, DeterministicMergeTripsToo)
{
    SystemConfig cfg = wedgedConfig();
    cfg.lpJobs = 4;
    cfg.lpDeterministic = true;
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);
    Simulator sim(cfg);
    EXPECT_THROW((void)sim.run(t), SimHang);
}

TEST(Watchdog, TimeWindowTripsAndShutsWorkersDown)
{
    SystemConfig cfg = wedgedConfig();
    cfg.lpJobs = 4;
    const auto t = mpTrace(cfg, 0, 4, Scope::Sys, 12, 5);
    Simulator sim(cfg);
    // The throw must unwind cleanly (workers joined) — ASan/TSan legs
    // would flag a leaked or racing worker thread here.
    EXPECT_THROW((void)sim.run(t), SimHang);
}

TEST(Watchdog, SweepIsolatesWedgedCellAsDegraded)
{
    SystemConfig good = faultConfig();
    good.protocol = Protocol::Hmg;

    SweepCell ok_cell{"bfs", good, 0.05, 1};
    SweepCell bad_cell{"bfs", wedgedConfig(), 0.05, 1};

    SweepRunner runner(2);
    const auto results = runner.run({ok_cell, bad_cell, ok_cell});
    ASSERT_EQ(results.size(), 3u);

    EXPECT_FALSE(results[0].degraded);
    EXPECT_GT(results[0].cycles, 0u);
    EXPECT_FALSE(results[2].degraded);
    expectSameStats(results[0], results[2]);

    // The wedged cell hung twice (retried once), then was reported
    // degraded with the watchdog diagnostic — the sweep survived.
    EXPECT_TRUE(results[1].degraded);
    EXPECT_NE(results[1].degradedReason.find("no progress"),
              std::string::npos)
        << results[1].degradedReason;
    EXPECT_FALSE(results[1].diagnostic.empty());
}

} // namespace
} // namespace hmg
