/**
 * @file
 * Scoped memory-model litmus tests, parameterized over every *coherent*
 * protocol (the idealized-caching model is deliberately incoherent and
 * is exempt). These validate the guarantees the NVIDIA scoped model
 * requires (Section II-C): message passing through release/acquire at
 * `.gpu` and `.sys` scope, the forced-miss rules for scoped loads, and
 * atomic serialization at the scope home.
 *
 * The machine is the small 2-GPU x 2-GPM harness:
 *   SMs 0,1 -> GPM0 (GPU0)   SMs 2,3 -> GPM1 (GPU0)
 *   SMs 4,5 -> GPM2 (GPU1)   SMs 6,7 -> GPM3 (GPU1)
 */

#include <gtest/gtest.h>

#include "core/checker.hh"
#include "test_system.hh"

namespace hmg
{
namespace
{

using testing::DirectDrive;

class LitmusTest : public ::testing::TestWithParam<Protocol>
{
};

constexpr Addr kData = 0x000000; // page 0
constexpr Addr kFlag = 0x200000; // page 1

/**
 * Message passing: reader seeds a stale copy of DATA, writer publishes
 * DATA then FLAG with a release, reader spins on an acquire-load of
 * FLAG and must then observe the new DATA.
 */
void
runMessagePassing(DirectDrive &d, SmId writer, SmId reader, Scope scope,
                  GpmId data_home, GpmId flag_home)
{
    d.place(kData, data_home);
    d.place(kFlag, flag_home);

    // Seed a (soon stale) copy of DATA in the reader's caches.
    Version v0 = d.load(reader, kData);
    EXPECT_EQ(v0, 0u);

    // Writer: DATA = v1; release; FLAG = v2.
    Version v1 = d.store(writer, kData);
    d.release(writer, scope);
    Version v2 = d.store(writer, kFlag);

    // Reader: acquire-load FLAG until it observes v2 (spin loop).
    int spins = 0;
    Version flag_seen = 0;
    while (flag_seen < v2) {
        flag_seen = d.load(reader, kFlag, scope);
        ASSERT_LT(++spins, 100) << "flag never became visible";
    }
    d.acquire(reader, scope);

    // Relaxed reload of DATA must observe at least v1.
    Version data_seen = d.load(reader, kData);
    EXPECT_GE(data_seen, v1)
        << "stale data after synchronization (protocol "
        << toString(d.cfg().protocol) << ")";
}

TEST_P(LitmusTest, MessagePassingSysScopeAcrossGpus)
{
    DirectDrive d(GetParam());
    // Writer on GPU0, reader on GPU1; data homed on the reader's GPU,
    // flag homed on a third GPM.
    runMessagePassing(d, /*writer=*/0, /*reader=*/4, Scope::Sys,
                      /*data_home=*/3, /*flag_home=*/1);
}

TEST_P(LitmusTest, MessagePassingSysScopeDataHomedAtWriter)
{
    DirectDrive d(GetParam());
    runMessagePassing(d, 0, 6, Scope::Sys, /*data_home=*/0,
                      /*flag_home=*/2);
}

TEST_P(LitmusTest, MessagePassingGpuScopeWithinGpu)
{
    DirectDrive d(GetParam());
    // Writer GPM0, reader GPM1 (both GPU0); data homed on a *remote*
    // GPU to stress the GPU-home path.
    runMessagePassing(d, /*writer=*/0, /*reader=*/2, Scope::Gpu,
                      /*data_home=*/3, /*flag_home=*/2);
}

TEST_P(LitmusTest, MessagePassingGpuScopeLocalData)
{
    DirectDrive d(GetParam());
    runMessagePassing(d, 0, 2, Scope::Gpu, /*data_home=*/1,
                      /*flag_home=*/0);
}

TEST_P(LitmusTest, RepeatedRounds)
{
    DirectDrive d(GetParam());
    d.place(kData, 3);
    d.place(kFlag, 1);
    Version last_flag = 0;
    for (int round = 0; round < 5; ++round) {
        Version v1 = d.store(0, kData);
        d.release(0, Scope::Sys);
        Version v2 = d.store(0, kFlag);
        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(5, kFlag, Scope::Sys);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(5, Scope::Sys);
        EXPECT_GE(d.load(5, kData), v1);
        EXPECT_GT(v2, last_flag);
        last_flag = v2;
    }
}

TEST_P(LitmusTest, ScopedLoadBypassesStaleLocalCopy)
{
    DirectDrive d(GetParam());
    d.place(kData, 3);
    // Reader (GPM0) caches version 0.
    EXPECT_EQ(d.load(0, kData), 0u);
    // Another SM on the *same GPM* writes; the writer's own GPM now has
    // the new version, but we check the home-path rules from a third
    // GPM that still holds nothing.
    Version v1 = d.store(6, kData);
    // A `.sys`-scoped load may only hit at the system home, so it must
    // observe v1 no matter what the local L2 held.
    EXPECT_EQ(d.load(0, kData, Scope::Sys), v1);
}

TEST_P(LitmusTest, AtomicReadsLatestAndSerializes)
{
    DirectDrive d(GetParam());
    d.place(kData, 2);
    Version v1 = d.store(0, kData);
    auto [old1, mine1] = d.atomic(4, kData, Scope::Sys);
    EXPECT_EQ(old1, v1);
    auto [old2, mine2] = d.atomic(1, kData, Scope::Sys);
    EXPECT_EQ(old2, mine1);
    (void)mine2;
}

TEST_P(LitmusTest, GpuScopedAtomicSerializesWithinGpu)
{
    DirectDrive d(GetParam());
    d.place(kData, 1);
    auto [old1, mine1] = d.atomic(0, kData, Scope::Gpu);
    EXPECT_EQ(old1, 0u);
    auto [old2, mine2] = d.atomic(2, kData, Scope::Gpu);
    EXPECT_EQ(old2, mine1);
    (void)mine2;
}

TEST_P(LitmusTest, ReleaseWaitsForPendingWrites)
{
    DirectDrive d(GetParam());
    d.place(kData, 3);
    // Post a write without draining, then release: by the time the
    // release completes, the write must be at the system home.
    Version v = d.storeAsync(0, kData);
    d.release(0, Scope::Sys);
    EXPECT_EQ(d.sys.memory().read(d.sys.addressMap().lineAddr(kData)), v);
    // And any other SM's `.sys` load observes it.
    EXPECT_EQ(d.load(7, kData, Scope::Sys), v);
}

TEST_P(LitmusTest, WriteSeenByHomeAfterDrain)
{
    DirectDrive d(GetParam());
    d.place(kData, 2);
    Version v = d.store(5, kData);
    EXPECT_EQ(d.sys.memory().read(0), v);
    EXPECT_EQ(d.load(5, kData), v);
}

INSTANTIATE_TEST_SUITE_P(
    AllCoherentProtocols, LitmusTest,
    ::testing::Values(Protocol::NoRemoteCache, Protocol::SwNonHier,
                      Protocol::SwHier, Protocol::Nhcc, Protocol::Hmg),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        std::string n = toString(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ------------------------------------------------------------------
// The same scoped litmus shapes, re-run with the runtime coherence
// checker (`--check`) interposed: every load, release and acquire is
// verified against the version oracle while the protocol runs, so a
// protocol bug fails here even if the litmus assertion itself would
// have passed by luck.
// ------------------------------------------------------------------

constexpr Addr kExtra = 0x400000; // page 2, for the WRC third line

class CheckedLitmusTest : public ::testing::TestWithParam<Protocol>
{
  protected:
    static SystemConfig
    checkedConfig(Protocol p)
    {
        SystemConfig cfg = testing::smallConfig(p);
        cfg.checkCoherence = true;
        return cfg;
    }

    /** The wrapping checker (the harness installed it via cfg). */
    static CoherenceChecker &
    checker(DirectDrive &d)
    {
        auto *c = dynamic_cast<CoherenceChecker *>(&d.sys.model());
        EXPECT_NE(c, nullptr);
        return *c;
    }
};

TEST_P(CheckedLitmusTest, MessagePassingSysScopeAcrossGpus)
{
    DirectDrive d(GetParam(), checkedConfig(GetParam()));
    runMessagePassing(d, /*writer=*/0, /*reader=*/4, Scope::Sys,
                      /*data_home=*/3, /*flag_home=*/1);
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(CheckedLitmusTest, MessagePassingGpuScopeWithinGpu)
{
    DirectDrive d(GetParam(), checkedConfig(GetParam()));
    runMessagePassing(d, /*writer=*/0, /*reader=*/2, Scope::Gpu,
                      /*data_home=*/3, /*flag_home=*/2);
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(CheckedLitmusTest, StoreBufferingSysScope)
{
    DirectDrive d(GetParam(), checkedConfig(GetParam()));
    d.place(kData, 0);
    d.place(kFlag, 3);
    // SB: each side publishes its line, fences at .sys, then reads the
    // other's. The forbidden outcome (both read 0) must be unreachable;
    // with the synchronous drive the second reader must see the first
    // writer's value.
    Version x1 = d.store(0, kData);
    d.release(0, Scope::Sys);
    Version r1 = d.load(0, kFlag, Scope::Sys);
    Version y1 = d.store(4, kFlag);
    d.release(4, Scope::Sys);
    Version r2 = d.load(4, kData, Scope::Sys);
    EXPECT_FALSE(r1 == 0 && r2 == 0) << "SB forbidden outcome";
    EXPECT_EQ(r2, x1);
    (void)y1;
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(CheckedLitmusTest, WriteToReadCausalitySysScope)
{
    DirectDrive d(GetParam(), checkedConfig(GetParam()));
    d.place(kData, 0);
    d.place(kFlag, 3);
    d.place(kExtra, 2);
    // WRC: T0 publishes DATA; T1 observes it, then publishes EXTRA; T2
    // observes EXTRA and must (transitively) observe DATA.
    EXPECT_EQ(d.load(6, kData), 0u); // plant a stale copy at T2
    Version v1 = d.store(0, kData);
    d.release(0, Scope::Sys);

    Version seen = d.load(2, kData, Scope::Sys);
    EXPECT_EQ(seen, v1);
    d.acquire(2, Scope::Sys);
    d.release(2, Scope::Sys);
    Version v2 = d.store(2, kExtra);

    int spins = 0;
    Version e = 0;
    while (e < v2) {
        e = d.load(6, kExtra, Scope::Sys);
        ASSERT_LT(++spins, 100);
    }
    d.acquire(6, Scope::Sys);
    EXPECT_GE(d.load(6, kData), v1) << "WRC causality broken";
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(CheckedLitmusTest, RepeatedRoundsUnderChecker)
{
    DirectDrive d(GetParam(), checkedConfig(GetParam()));
    d.place(kData, 3);
    d.place(kFlag, 1);
    for (int round = 0; round < 3; ++round) {
        Version v1 = d.store(1, kData);
        d.release(1, Scope::Sys);
        Version v2 = d.store(1, kFlag);
        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(7, kFlag, Scope::Sys);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(7, Scope::Sys);
        EXPECT_GE(d.load(7, kData), v1);
    }
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CheckedProtocols, CheckedLitmusTest,
    ::testing::Values(Protocol::SwNonHier, Protocol::SwHier,
                      Protocol::Nhcc, Protocol::Hmg),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        std::string n = toString(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ------------------------------------------------------------------
// Three-level litmus: the same scoped guarantees on the minimal
// 2-node x 2-GPU x 2-GPM machine, where a sys-scope release must climb
// requester -> GPU home -> node home -> system home and the acquire
// path crosses the node switches. The coherence checker is interposed
// throughout. GPM g holds SMs {2g, 2g+1}; node 0 owns GPMs 0..3,
// node 1 owns GPMs 4..7.
// ------------------------------------------------------------------

class ThreeLevelLitmusTest : public ::testing::TestWithParam<Protocol>
{
  protected:
    static SystemConfig
    threeLevelConfig(Protocol p)
    {
        SystemConfig cfg = testing::smallConfig(p);
        cfg.numNodes = 2;
        cfg.numGpus = 4;
        cfg.checkCoherence = true;
        return cfg;
    }

    static CoherenceChecker &
    checker(DirectDrive &d)
    {
        auto *c = dynamic_cast<CoherenceChecker *>(&d.sys.model());
        EXPECT_NE(c, nullptr);
        return *c;
    }
};

TEST_P(ThreeLevelLitmusTest, MessagePassingSysScopeAcrossNodes)
{
    DirectDrive d(GetParam(), threeLevelConfig(GetParam()));
    // Writer on node 0, reader on node 1, data homed on the reader's
    // node, flag homed on the writer's — every message crosses the
    // node uplinks in at least one direction.
    runMessagePassing(d, /*writer=*/0, /*reader=*/8, Scope::Sys,
                      /*data_home=*/6, /*flag_home=*/2);
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(ThreeLevelLitmusTest, MessagePassingGpuScopeOnRemoteNode)
{
    DirectDrive d(GetParam(), threeLevelConfig(GetParam()));
    // Both threads live on node 1's GPU 2; a .gpu-scope release must
    // not need the (remote) system home on node 0 for visibility
    // within the GPU.
    runMessagePassing(d, /*writer=*/8, /*reader=*/10, Scope::Gpu,
                      /*data_home=*/1, /*flag_home=*/5);
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(ThreeLevelLitmusTest, StoreBufferingSysScopeAcrossNodes)
{
    DirectDrive d(GetParam(), threeLevelConfig(GetParam()));
    d.place(kData, 0);
    d.place(kFlag, 7);
    Version x1 = d.store(2, kData);
    d.release(2, Scope::Sys);
    Version r1 = d.load(2, kFlag, Scope::Sys);
    Version y1 = d.store(12, kFlag);
    d.release(12, Scope::Sys);
    Version r2 = d.load(12, kData, Scope::Sys);
    EXPECT_FALSE(r1 == 0 && r2 == 0) << "SB forbidden outcome";
    EXPECT_EQ(r2, x1);
    (void)y1;
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

TEST_P(ThreeLevelLitmusTest, RepeatedRoundsAcrossNodesUnderChecker)
{
    DirectDrive d(GetParam(), threeLevelConfig(GetParam()));
    d.place(kData, 5);
    d.place(kFlag, 3);
    for (int round = 0; round < 3; ++round) {
        Version v1 = d.store(1, kData);
        d.release(1, Scope::Sys);
        Version v2 = d.store(1, kFlag);
        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(15, kFlag, Scope::Sys);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(15, Scope::Sys);
        EXPECT_GE(d.load(15, kData), v1);
    }
    EXPECT_GT(checker(d).checksPerformed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CheckedProtocols, ThreeLevelLitmusTest,
    ::testing::Values(Protocol::SwNonHier, Protocol::SwHier,
                      Protocol::Nhcc, Protocol::Hmg),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        std::string n = toString(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace hmg
