/**
 * @file
 * Parameterized geometry sweeps: cache and directory structural
 * invariants across associativities and capacities (property-style
 * TEST_P), plus SystemConfig validation coverage.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "core/directory.hh"

namespace hmg
{
namespace
{

// ---------------------------------------------------------------- caches

using CacheGeom = std::tuple<int, int, int>;

class CacheGeometry : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometry, FillNeverExceedsCapacityAndLruIsSane)
{
    auto [capacity_i, ways_i, line_i] = GetParam();
    const auto capacity = static_cast<std::uint64_t>(capacity_i);
    const auto ways = static_cast<std::uint32_t>(ways_i);
    const auto line = static_cast<std::uint32_t>(line_i);
    Cache c(capacity, ways, line, /*write_allocate=*/true);
    const std::uint64_t lines = capacity / line;

    // Overfill by 4x; the cache must never hold more than its capacity
    // and must still hit on just-inserted lines.
    Rng rng(13);
    for (std::uint64_t i = 0; i < 4 * lines; ++i) {
        Addr a = i * line;
        c.fill(a, i + 1);
        ASSERT_TRUE(c.load(a).hit) << "just-filled line must hit";
    }
    EXPECT_LE(c.validLines(), lines);
    EXPECT_EQ(c.evictions(), 4 * lines - c.validLines());
}

TEST_P(CacheGeometry, RandomOpsKeepVersionMonotonicPerLine)
{
    auto [capacity_i, ways_i, line_i] = GetParam();
    const auto line = static_cast<std::uint32_t>(line_i);
    Cache c(static_cast<std::uint64_t>(capacity_i),
            static_cast<std::uint32_t>(ways_i), line, true);
    Rng rng(7);
    std::map<Addr, Version> newest;
    Version v = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.below(256) * line;
        switch (rng.below(3)) {
          case 0:
            c.store(a, ++v);
            newest[a] = v;
            break;
          case 1:
            c.fill(a, newest.count(a) ? newest[a] : 0);
            break;
          default: {
            auto r = c.load(a);
            if (r.hit && newest.count(a)) {
                EXPECT_LE(r.version, newest[a]);
            }
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(
        std::make_tuple(16 * 1024, 1, 128),        // direct-mapped
        std::make_tuple(16 * 1024, 4, 128),
        std::make_tuple(128 * 1024, 8, 128),       // L1 shape
        std::make_tuple(3 * 1024 * 1024, 16, 128), // L2 slice
        std::make_tuple(16 * 1024, 128, 128),      // fully associative
        std::make_tuple(32 * 1024, 4, 64),         // smaller lines
        std::make_tuple(48 * 1024, 4, 128)),       // non-pow2 sets
    [](const ::testing::TestParamInfo<CacheGeom> &info) {
        return "cap" + std::to_string(std::get<0>(info.param) / 1024) +
               "k_w" + std::to_string(std::get<1>(info.param)) + "_l" +
               std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------------- directory

using DirGeom = std::tuple<int, int, int>;

class DirectoryGeometry : public ::testing::TestWithParam<DirGeom>
{
};

TEST_P(DirectoryGeometry, AllocateFindRemoveRoundTrip)
{
    auto [entries_i, ways_i, sector_i] = GetParam();
    const auto entries = static_cast<std::uint32_t>(entries_i);
    const auto sector = static_cast<std::uint32_t>(sector_i);
    Directory d(entries, static_cast<std::uint32_t>(ways_i), sector);
    // Insert exactly `entries` distinct sectors striped across sets.
    for (std::uint64_t i = 0; i < entries; ++i)
        d.allocate(i * sector)->addGpm(static_cast<std::uint32_t>(i % 3));
    EXPECT_EQ(d.validCount(), entries);
    EXPECT_EQ(d.evictions(), 0u);
    // Everything findable, any address within the sector resolves.
    for (std::uint64_t i = 0; i < entries; ++i) {
        ASSERT_NE(d.find(i * sector + sector / 2), nullptr);
        EXPECT_TRUE(d.remove(i * sector));
    }
    EXPECT_EQ(d.validCount(), 0u);
}

TEST_P(DirectoryGeometry, EvictionsAreLruWithinSet)
{
    auto [entries_i, ways_i, sector_i] = GetParam();
    const auto ways = static_cast<std::uint32_t>(ways_i);
    const auto sector = static_cast<std::uint32_t>(sector_i);
    Directory d(static_cast<std::uint32_t>(entries_i), ways, sector);
    const std::uint64_t sets = d.numSets();
    // Fill one set, touch all but the first, then overflow: the
    // untouched entry must be the victim.
    for (std::uint32_t w = 0; w < ways; ++w)
        d.allocate(w * sets * sector);
    for (std::uint32_t w = 1; w < ways; ++w)
        d.find(w * sets * sector);
    DirEntry victim;
    d.allocate(ways * sets * sector, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.sector, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectoryGeometry,
    ::testing::Values(std::make_tuple(64, 4, 512),
                      std::make_tuple(3 * 1024, 8, 512),
                      std::make_tuple(12 * 1024, 8, 512),
                      std::make_tuple(12 * 1024, 8, 128), // 1 line/entry
                      std::make_tuple(6 * 1024, 8, 1024), // 8 lines/entry
                      std::make_tuple(48 * 1024, 16, 512)),
    [](const ::testing::TestParamInfo<DirGeom> &info) {
        return "e" + std::to_string(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param)) + "_s" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------- config death

TEST(ConfigValidation, RejectsInconsistentConfigs)
{
    auto dies = [](auto mutate) {
        SystemConfig cfg;
        mutate(cfg);
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "");
    };
    dies([](SystemConfig &c) { c.numGpus = 0; });
    dies([](SystemConfig &c) { c.smsPerGpu = 130; }); // not / gpms
    dies([](SystemConfig &c) { c.cacheLineBytes = 96; });
    dies([](SystemConfig &c) { c.osPageBytes = 64; });
    dies([](SystemConfig &c) { c.l2BytesPerGpu = 13 * 1024 * 1024 + 2; });
    dies([](SystemConfig &c) { c.dirLinesPerEntry = 3; });
    dies([](SystemConfig &c) { c.dirEntriesPerGpm = 12 * 1024 + 1; });
    dies([](SystemConfig &c) { c.interGpuGBpsPerLink = -1; });
    dies([](SystemConfig &c) { c.smIssueWidth = 0; });
    // ---- node tier ----
    dies([](SystemConfig &c) { c.numNodes = 0; });
    dies([](SystemConfig &c) { c.numNodes = 3; }); // 4 GPUs % 3 != 0
    dies([](SystemConfig &c) {
        c.numGpus = 64; // 64 GPUs on one node: GPU sharer mask is 32-bit
        c.smsPerGpu = 8;
        c.l2BytesPerGpu = 4 * 1024 * 1024;
    });
    dies([](SystemConfig &c) {
        c.numNodes = 33; // node sharer mask is 32-bit too
        c.numGpus = 33;
        c.smsPerGpu = 8;
        c.l2BytesPerGpu = 4 * 1024 * 1024;
    });
    dies([](SystemConfig &c) {
        // NHCC's flat mask caps the whole machine at 32 GPMs.
        c.protocol = Protocol::Nhcc;
        c.numNodes = 2;
        c.numGpus = 8;
        c.gpmsPerGpu = 8;
        c.smsPerGpu = 8;
        c.l2BytesPerGpu = 8 * 1024 * 1024;
    });
    dies([](SystemConfig &c) {
        // LP node-cut lookahead is interNodeHopLatency/2: a 1-cycle
        // uplink would make it zero.
        c.numNodes = 2;
        c.numGpus = 4;
        c.interNodeHopLatency = 1;
    });
}

TEST(ConfigValidation, AcceptsMultiNodeShapes)
{
    // The shapes the three-level model checker, the CI litmus leg and
    // the scale-out benches run must all validate under HMG.
    {
        SystemConfig cfg; // 2 nodes x 2 GPUs x 2 GPMs
        cfg.protocol = Protocol::Hmg;
        cfg.numNodes = 2;
        cfg.numGpus = 4;
        cfg.gpmsPerGpu = 2;
        cfg.smsPerGpu = 8;
        cfg.l2BytesPerGpu = 2 * 1024 * 1024;
        cfg.validate();
        EXPECT_EQ(cfg.gpusPerNode(), 2u);
        EXPECT_EQ(cfg.totalGpms(), 8u);
    }
    {
        SystemConfig cfg; // 8 nodes x 8 GPUs x 4 GPMs = 64 GPUs
        cfg.protocol = Protocol::Hmg;
        cfg.numNodes = 8;
        cfg.numGpus = 64;
        cfg.gpmsPerGpu = 4;
        cfg.smsPerGpu = 16;
        cfg.l2BytesPerGpu = 4 * 1024 * 1024;
        cfg.dirEntriesPerGpm = 4096;
        cfg.validate();
        EXPECT_EQ(cfg.gpusPerNode(), 8u);
        EXPECT_EQ(cfg.totalGpms(), 256u);
    }
}

TEST(ConfigValidation, AcceptsPaperVariants)
{
    // Every configuration the sensitivity benches sweep must validate.
    for (double bw : {100.0, 200.0, 300.0, 400.0}) {
        SystemConfig cfg;
        cfg.interGpuGBpsPerLink = bw;
        cfg.validate();
    }
    for (std::uint64_t mb : {6, 12, 24}) {
        SystemConfig cfg;
        cfg.l2BytesPerGpu = mb * 1024 * 1024;
        cfg.validate();
    }
    for (std::uint32_t k : {3, 6, 12}) {
        SystemConfig cfg;
        cfg.dirEntriesPerGpm = k * 1024;
        cfg.validate();
    }
    for (std::uint32_t g : {1, 2, 4, 8}) {
        SystemConfig cfg;
        cfg.dirLinesPerEntry = g;
        cfg.dirEntriesPerGpm = 12 * 1024 * 4 / g;
        cfg.validate();
    }
}

} // namespace
} // namespace hmg
