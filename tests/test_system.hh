/**
 * @file
 * Shared test harness: a small 2-GPU x 2-GPM machine driven directly at
 * the CoherenceModel interface (bypassing SMs and traces), with
 * synchronous wrappers that run the engine to completion around each
 * operation, and async variants for race tests.
 */

#ifndef HMG_TESTS_TEST_SYSTEM_HH
#define HMG_TESTS_TEST_SYSTEM_HH

#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "gpu/system.hh"

namespace hmg::testing
{

inline SystemConfig
smallConfig(Protocol p)
{
    SystemConfig cfg;
    cfg.numGpus = 2;
    cfg.gpmsPerGpu = 2;
    cfg.smsPerGpu = 4; // 2 SMs per GPM
    cfg.maxWarpsPerSm = 8;
    cfg.l1Bytes = 16 * 1024;
    cfg.l1Ways = 4;
    cfg.l2BytesPerGpu = 64 * 1024; // 32 KB per GPM: 16 sets x 16 ways
    cfg.dirEntriesPerGpm = 64;
    cfg.dirWays = 4;
    cfg.protocol = p;
    return cfg;
}

/** Direct driver at the L2/protocol layer. */
class DirectDrive
{
  public:
    explicit DirectDrive(Protocol p,
                         std::optional<SystemConfig> cfg = std::nullopt)
        : sys(cfg ? *cfg : smallConfig(p))
    {
    }

    SystemContext &ctx() { return sys.ctx(); }
    CoherenceModel &model() { return sys.model(); }
    Engine &engine() { return sys.engine(); }
    const SystemConfig &cfg() const { return sys.cfg(); }

    /** Pin the page containing `addr` to `home`. */
    void place(Addr addr, GpmId home) { sys.pageTable().touch(addr, home); }

    GpmId gpmOf(SmId sm) const { return sys.cfg().gpmOfSm(sm); }

    MemAccess
    acc(SmId sm, Addr line, Scope s = Scope::None) const
    {
        return MemAccess{sm, sys.cfg().gpmOfSm(sm), line, s};
    }

    /** Synchronous load: runs the engine until the value returns. */
    Version
    load(SmId sm, Addr line, Scope s = Scope::None)
    {
        std::optional<Version> got;
        sys.model().load(acc(sm, line, s), [&](Version v) { got = v; });
        sys.engine().run();
        EXPECT_TRUE(got.has_value());
        return got.value_or(~Version{0});
    }

    /** Synchronous store: runs until the write reaches the system home
     *  (and all resulting invalidations have been delivered, since the
     *  engine drains). @return the store's version. */
    Version
    store(SmId sm, Addr line, Scope s = Scope::None)
    {
        Version v = sys.memory().allocateVersion();
        sys.tracker().issued(sm);
        bool done = false;
        sys.model().store(acc(sm, line, s), v, []() {},
                          [&]() { done = true; });
        sys.engine().run();
        EXPECT_TRUE(done);
        return v;
    }

    /** Fire-and-forget store: does NOT run the engine. */
    Version
    storeAsync(SmId sm, Addr line, Scope s = Scope::None)
    {
        Version v = sys.memory().allocateVersion();
        sys.tracker().issued(sm);
        sys.model().store(acc(sm, line, s), v, []() {}, []() {});
        return v;
    }

    /** Synchronous atomic RMW. @return {pre-version, own version}. */
    std::pair<Version, Version>
    atomic(SmId sm, Addr line, Scope s = Scope::Gpu)
    {
        Version v = sys.memory().allocateVersion();
        sys.tracker().issued(sm);
        std::optional<Version> old;
        bool sys_done = false;
        sys.model().atomic(acc(sm, line, s), v,
                           [&](Version o) { old = o; },
                           [&]() { sys_done = true; });
        sys.engine().run();
        EXPECT_TRUE(old.has_value());
        EXPECT_TRUE(sys_done);
        return {old.value_or(~Version{0}), v};
    }

    /** Synchronous release fence at scope `s`. */
    void
    release(SmId sm, Scope s)
    {
        bool done = false;
        sys.model().release(acc(sm, 0, s), [&]() { done = true; });
        sys.engine().run();
        EXPECT_TRUE(done);
    }

    /** Synchronous acquire fence at scope `s`. */
    void
    acquire(SmId sm, Scope s)
    {
        bool done = false;
        sys.model().acquire(acc(sm, 0, s), [&]() { done = true; });
        sys.engine().run();
        EXPECT_TRUE(done);
    }

    /** Does GPM `g`'s L2 currently hold `line`? */
    bool
    l2Has(GpmId g, Addr line) const
    {
        return const_cast<System &>(sys).gpm(g).l2().contains(line);
    }

    System sys;
};

} // namespace hmg::testing

#endif // HMG_TESTS_TEST_SYSTEM_HH
