/**
 * @file
 * Write-back L2 mode (Section IV-B's design alternative): dirty-line
 * behaviour, release- and boundary-triggered flushes, eviction
 * write-backs (the update-without-tracking message), invalidation-
 * triggered write-backs, and the scoped memory model under it all —
 * for both hardware protocols.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/simulator.hh"
#include "test_system.hh"
#include "trace/trace.hh"

namespace hmg
{
namespace
{

using testing::DirectDrive;
using testing::smallConfig;

constexpr Addr kData = 0x000000;
constexpr Addr kFlag = 0x200000;

SystemConfig
wbConfig(Protocol p)
{
    SystemConfig cfg = smallConfig(p);
    cfg.l2WriteBack = true;
    return cfg;
}

class WriteBackTest : public ::testing::TestWithParam<Protocol>
{
};

TEST_P(WriteBackTest, NonSyncStoreStaysDirtyLocally)
{
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 3); // homed on a remote GPU
    Version v = d.store(0, kData);
    // The write completed locally: dirty in GPM0's L2, home untouched.
    EXPECT_EQ(d.sys.gpm(0).l2().dirtyLines(), 1u);
    EXPECT_TRUE(d.l2Has(0, kData));
    EXPECT_EQ(d.sys.memory().read(kData), 0u);
    EXPECT_LT(d.sys.memory().read(kData), v);
    // No write-through crossed the switch.
    EXPECT_EQ(d.sys.network().interGpuBytes(MsgType::WriteThrough), 0u);
}

TEST_P(WriteBackTest, ReleaseFlushesDirtyDataHome)
{
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 3);
    Version v = d.store(0, kData);
    d.release(0, Scope::Sys);
    EXPECT_EQ(d.sys.gpm(0).l2().dirtyLines(), 0u);
    EXPECT_EQ(d.sys.memory().read(kData), v);
    // The flushed line stays cached clean at the writer.
    EXPECT_TRUE(d.l2Has(0, kData));
}

TEST_P(WriteBackTest, SynchronizingStoresStillWriteThrough)
{
    // Forward progress: scope > .cta stores may not linger dirty.
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kFlag, 2);
    Version v = d.store(0, kFlag, Scope::Sys);
    EXPECT_EQ(d.sys.memory().read(kFlag), v);
    EXPECT_EQ(d.sys.gpm(0).l2().dirtyLines(), 0u);
}

TEST_P(WriteBackTest, MessagePassingHoldsUnderWriteBack)
{
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 3);
    d.place(kFlag, 1);
    EXPECT_EQ(d.load(4, kData), 0u); // reader seeds a stale copy

    Version v1 = d.store(0, kData);  // dirty-local
    d.release(0, Scope::Sys);        // flush + markers
    Version v2 = d.store(0, kFlag, Scope::Sys);

    Version seen = 0;
    int spins = 0;
    while (seen < v2) {
        seen = d.load(4, kFlag, Scope::Sys);
        ASSERT_LT(++spins, 100);
    }
    d.acquire(4, Scope::Sys);
    EXPECT_GE(d.load(4, kData), v1);
}

TEST_P(WriteBackTest, DirtyEvictionWritesBackWithoutTracking)
{
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 3);
    Version v = d.store(0, kData); // dirty at GPM0
    // Evict it by filling the set (tiny 16-set, 16-way harness L2).
    auto &l2 = d.sys.gpm(0).l2();
    const std::uint64_t sets = l2.tags().numSets();
    for (std::uint32_t w = 0; w <= d.cfg().l2Ways; ++w)
        l2.fill(kData + (w + 1) * sets * 128, 1);
    d.engine().run(); // deliver the write-back
    EXPECT_EQ(d.sys.memory().read(kData), v);
    // Update-without-tracking: the evicting GPM is not a sharer.
    const DirEntry *e = d.sys.gpm(3).dir()->find(kData);
    if (e != nullptr) {
        EXPECT_FALSE(GetParam() == Protocol::Nhcc ? e->hasGpm(0)
                                                  : e->hasGpu(0));
    }
}

TEST_P(WriteBackTest, InvalidationRescuesDirtyData)
{
    // A racing writer invalidates a sector holding another GPM's dirty
    // line: the dirty data must reach the home, not vanish.
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 2);
    d.load(0, kData);              // GPM0 tracked as sharer
    Version v1 = d.store(0, kData); // now dirty at GPM0 (local write)
    Version v2 = d.store(6, kData, Scope::Sys); // racing remote writer
    d.engine().run();
    // Both writes reached the home; the newest version wins there.
    Version final = d.sys.memory().read(kData);
    EXPECT_GE(final, v1);
    EXPECT_EQ(final, std::max(v1, v2));
}

TEST_P(WriteBackTest, KernelBoundaryFlushesEverything)
{
    DirectDrive d(GetParam(), wbConfig(GetParam()));
    d.place(kData, 3);
    Version v = d.store(0, kData);
    bool drained = false;
    d.sys.model().drainForBoundary([&]() { drained = true; });
    d.engine().run();
    EXPECT_TRUE(drained);
    EXPECT_EQ(d.sys.memory().read(kData), v);
    EXPECT_EQ(d.sys.gpm(0).l2().dirtyLines(), 0u);
}

TEST_P(WriteBackTest, WriteBackCutsStoreTraffic)
{
    // A warm store loop to remote data: write-back coalesces the
    // write-throughs into one flush.
    DirectDrive wt(GetParam()); // write-through (default)
    DirectDrive wb(GetParam(), wbConfig(GetParam()));
    for (DirectDrive *d : {&wt, &wb}) {
        d->place(kData, 3);
        for (int i = 0; i < 16; ++i)
            d->store(0, kData);
        d->release(0, Scope::Sys);
    }
    EXPECT_LT(wb.sys.network().interGpuBytes(MsgType::WriteThrough),
              wt.sys.network().interGpuBytes(MsgType::WriteThrough));
}

INSTANTIATE_TEST_SUITE_P(HwProtocols, WriteBackTest,
                         ::testing::Values(Protocol::Nhcc, Protocol::Hmg),
                         [](const ::testing::TestParamInfo<Protocol> &i) {
                             return std::string(toString(i.param));
                         });

TEST(WriteBackConfig, RejectedForSoftwareProtocols)
{
    SystemConfig cfg = smallConfig(Protocol::SwHier);
    cfg.l2WriteBack = true;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "hardware coherence");
}

TEST(WriteBackFullSystem, WorkloadRunsEndToEnd)
{
    SystemConfig cfg = smallConfig(Protocol::Hmg);
    cfg.l2WriteBack = true;
    trace::Trace t;
    trace::Kernel k0, k1;
    for (int c = 0; c < 8; ++c) {
        trace::Cta cta;
        cta.warps.emplace_back();
        for (int i = 0; i < 16; ++i) {
            cta.warps[0].st((c * 16 + i) * 128, 1);
            cta.warps[0].ld((c * 16 + i) * 128, 1);
        }
        k0.ctas.push_back(cta);
        k1.ctas.push_back(std::move(cta));
    }
    t.kernels.push_back(std::move(k0));
    t.kernels.push_back(std::move(k1));
    Simulator sim(cfg);
    auto res = sim.run(t);
    EXPECT_GT(res.cycles, 0u);
    // Kernel boundary + end-of-trace drains flushed everything.
    for (GpmId g = 0; g < cfg.totalGpms(); ++g)
        EXPECT_EQ(sim.system().gpm(g).l2().dirtyLines(), 0u);
}

} // namespace
} // namespace hmg
