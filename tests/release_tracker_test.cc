/**
 * @file
 * Unit tests for the two-level outstanding-write ledger behind release
 * semantics.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/release_tracker.hh"
#include "sim/lp.hh"

namespace hmg
{
namespace
{

/** A serial (single-LP) domain: posts are immediate, as before. */
LpDomain &
serialLps()
{
    static SystemConfig cfg;
    static LpDomain lps(cfg);
    return lps;
}

TEST(ReleaseTracker, ImmediateWhenIdle)
{
    ReleaseTracker t(serialLps(), 4);
    int fired = 0;
    t.waitGpuLevel(0, [&]() { ++fired; });
    t.waitSysLevel(0, [&]() { ++fired; });
    t.waitAllDrained([&]() { ++fired; });
    EXPECT_EQ(fired, 3);
}

TEST(ReleaseTracker, GpuLevelBeforeSysLevel)
{
    ReleaseTracker t(serialLps(), 4);
    t.issued(1);
    int gpu = 0, sys = 0;
    t.waitGpuLevel(1, [&]() { ++gpu; });
    t.waitSysLevel(1, [&]() { ++sys; });
    EXPECT_EQ(gpu, 0);
    t.reachedGpuLevel(1);
    EXPECT_EQ(gpu, 1);
    EXPECT_EQ(sys, 0);
    t.reachedSysLevel(1);
    EXPECT_EQ(sys, 1);
}

TEST(ReleaseTracker, CountsPerSm)
{
    ReleaseTracker t(serialLps(), 4);
    t.issued(0);
    t.issued(0);
    t.issued(2);
    EXPECT_EQ(t.pendingGpu(0), 2u);
    EXPECT_EQ(t.pendingSys(2), 1u);
    EXPECT_EQ(t.totalPendingSys(), 3u);

    int fired = 0;
    t.waitSysLevel(0, [&]() { ++fired; });
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(fired, 0); // one store still pending on SM 0
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(fired, 1);
}

TEST(ReleaseTracker, GlobalDrainWaitsForEverySm)
{
    ReleaseTracker t(serialLps(), 4);
    t.issued(0);
    t.issued(3);
    int fired = 0;
    t.waitAllDrained([&]() { ++fired; });
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(fired, 0);
    t.reachedGpuLevel(3);
    t.reachedSysLevel(3);
    EXPECT_EQ(fired, 1);
}

TEST(ReleaseTracker, MultipleWaitersAllFire)
{
    ReleaseTracker t(serialLps(), 2);
    t.issued(0);
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        t.waitSysLevel(0, [&]() { ++fired; });
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(fired, 5);
}

TEST(ReleaseTracker, WaiterRegisteredInsideCallbackWaitsForNext)
{
    ReleaseTracker t(serialLps(), 2);
    t.issued(0);
    int outer = 0, inner = 0;
    t.waitSysLevel(0, [&]() {
        ++outer;
        // Issue another write from within the callback; a new waiter
        // must not fire until that one drains too.
        t.issued(0);
        t.waitSysLevel(0, [&]() { ++inner; });
    });
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(outer, 1);
    EXPECT_EQ(inner, 0);
    t.reachedGpuLevel(0);
    t.reachedSysLevel(0);
    EXPECT_EQ(inner, 1);
}

TEST(ReleaseTrackerDeath, UnderflowPanics)
{
    ReleaseTracker t(serialLps(), 2);
    EXPECT_DEATH(t.reachedSysLevel(0), "assertion");
}

} // namespace
} // namespace hmg
