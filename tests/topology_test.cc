/**
 * @file
 * Topology-generalization tests: the protocols and the home-node
 * mapping must work for any N-node, M-GPM, G-GPU shape (the paper
 * presents the protocol for arbitrary shapes, evaluating 1x4x4). Runs
 * the message-passing litmus and a randomized trace under NHCC and HMG
 * across a sweep of machine shapes — including multi-node shapes whose
 * home chain has a live node tier — plus the declarative Topology
 * object: its strict JSON parser (every malformed input is a one-line
 * fatal), its round-trip, and the differential proof that applying the
 * default spec to a SystemConfig changes nothing.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/topology.hh"
#include "gpu/simulator.hh"
#include "test_system.hh"
#include "trace/trace.hh"

namespace hmg
{
namespace
{

using Shape =
    std::tuple<int /*nodes*/, int /*gpus*/, int /*gpms*/, int /*protocol*/>;

SystemConfig
shapedConfig(std::uint32_t nodes, std::uint32_t gpus, std::uint32_t gpms,
             Protocol p)
{
    SystemConfig cfg;
    cfg.numNodes = nodes;
    cfg.numGpus = gpus;
    cfg.gpmsPerGpu = gpms;
    cfg.smsPerGpu = 2 * gpms; // 2 SMs per GPM
    cfg.maxWarpsPerSm = 8;
    cfg.l1Bytes = 16 * 1024;
    cfg.l1Ways = 4;
    cfg.l2BytesPerGpu = gpms * 32 * 1024;
    cfg.dirEntriesPerGpm = 64;
    cfg.dirWays = 4;
    cfg.protocol = p;
    cfg.validate();
    return cfg;
}

class TopologySweep : public ::testing::TestWithParam<Shape>
{
  protected:
    SystemConfig
    cfg() const
    {
        auto [nodes, gpus, gpms, proto] = GetParam();
        return shapedConfig(static_cast<std::uint32_t>(nodes),
                            static_cast<std::uint32_t>(gpus),
                            static_cast<std::uint32_t>(gpms),
                            static_cast<Protocol>(proto));
    }
};

TEST_P(TopologySweep, HomeMappingIsConsistent)
{
    SystemConfig c = cfg();
    System sys(c);
    // Place one page per GPM and check every GPU-home shares the system
    // home's local index.
    for (GpmId h = 0; h < c.totalGpms(); ++h) {
        Addr a = static_cast<Addr>(h) * c.osPageBytes;
        sys.pageTable().touch(a, h);
        EXPECT_EQ(sys.addressMap().systemHome(a), h);
        for (GpuId g = 0; g < c.numGpus; ++g) {
            GpmId gh = sys.addressMap().gpuHome(g, a);
            EXPECT_EQ(c.gpuOf(gh), g);
            EXPECT_EQ(c.localGpmOf(gh), c.localGpmOf(h));
        }
        for (NodeId n = 0; n < c.numNodes; ++n) {
            // The node home is the GPU home of the node's GPU whose
            // local index matches the system home's GPU — so every
            // node home is also a GPU home, and the node home of the
            // system home's own node is the system home itself.
            GpmId nh = sys.addressMap().nodeHome(n, a);
            EXPECT_EQ(c.nodeOfGpm(nh), n);
            EXPECT_EQ(c.localGpmOf(nh), c.localGpmOf(h));
            EXPECT_EQ(c.localGpuOf(c.gpuOf(nh)),
                      c.localGpuOf(c.gpuOf(h)));
            if (n == c.nodeOfGpm(h)) {
                EXPECT_EQ(nh, h);
            }
        }
    }
}

TEST_P(TopologySweep, MessagePassingAcrossGpus)
{
    SystemConfig c = cfg();
    if (c.numGpus < 2)
        GTEST_SKIP();
    testing::DirectDrive d(c.protocol, c);

    Rng rng(5);
    for (int trial = 0; trial < 6; ++trial) {
        const Addr data = static_cast<Addr>(2 * trial) * c.osPageBytes;
        const Addr flag =
            static_cast<Addr>(2 * trial + 1) * c.osPageBytes;
        d.place(data, static_cast<GpmId>(rng.below(c.totalGpms())));
        d.place(flag, static_cast<GpmId>(rng.below(c.totalGpms())));
        const SmId writer = static_cast<SmId>(rng.below(c.totalSms()));
        const SmId reader = static_cast<SmId>(rng.below(c.totalSms()));

        d.load(reader, data); // stale seed
        Version v1 = d.store(writer, data);
        d.release(writer, Scope::Sys);
        Version v2 = d.store(writer, flag);

        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(reader, flag, Scope::Sys);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(reader, Scope::Sys);
        EXPECT_GE(d.load(reader, data), v1)
            << "nodes=" << c.numNodes << " gpus=" << c.numGpus
            << " gpms=" << c.gpmsPerGpu << " trial=" << trial;
    }
}

TEST_P(TopologySweep, RandomTraceCompletes)
{
    SystemConfig c = cfg();
    Rng rng(11);
    trace::Trace t;
    t.name = "topo-random";
    for (int k = 0; k < 2; ++k) {
        trace::Kernel ker;
        ker.ctas.resize(2 * c.totalGpms());
        for (auto &cta : ker.ctas) {
            cta.warps.resize(2);
            for (auto &w : cta.warps)
                for (int i = 0; i < 20; ++i) {
                    Addr a = rng.below(256) * 128;
                    if (rng.chance(0.2))
                        w.st(a, 1);
                    else if (rng.chance(0.1))
                        w.atom(a, Scope::Sys, 2);
                    else
                        w.ld(a, 1);
                }
        }
        t.kernels.push_back(std::move(ker));
    }
    Simulator sim(c);
    auto res = sim.run(t);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.ops"),
                     static_cast<double>(t.memOps()));
    EXPECT_EQ(sim.system().tracker().totalPendingSys(), 0u);
}

std::vector<Shape>
allShapes()
{
    std::vector<Shape> shapes;
    const std::pair<int, int> dims[] = {{2, 2}, {2, 4}, {4, 2},
                                        {4, 4}, {8, 2}, {1, 4}};
    for (auto [gpus, gpms] : dims)
        for (Protocol p : {Protocol::Nhcc, Protocol::Hmg})
            shapes.emplace_back(1, gpus, gpms, static_cast<int>(p));
    // Multi-node shapes: the home chain grows a live node tier. The
    // 2x2x2 instance is the one hmgcheck --nodes 2 model-checks; the
    // larger ones exercise asymmetric tiers. HMG only — NHCC's flat
    // mask has no node tier (its scaling wall is the point of Fig. 2).
    for (auto [nodes, gpus, gpms] :
         {std::tuple<int, int, int>{2, 4, 2}, {2, 4, 4}, {4, 8, 2}})
        shapes.emplace_back(nodes, gpus, gpms,
                            static_cast<int>(Protocol::Hmg));
    return shapes;
}

std::string
shapeName(const ::testing::TestParamInfo<Shape> &info)
{
    std::string n = toString(
        static_cast<Protocol>(std::get<3>(info.param)));
    return n + "_" + std::to_string(std::get<0>(info.param)) + "x" +
           std::to_string(std::get<1>(info.param)) + "x" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologySweep,
                         ::testing::ValuesIn(allShapes()), shapeName);

// ------------------------------------------- declarative Topology object

TEST(TopologySpec, DefaultReproducesTableTwo)
{
    // The default-constructed Topology applied onto a default
    // SystemConfig must change nothing: same shape, same link fabric,
    // same memories. (The end-to-end statistics differential lives in
    // cli_test.sh / ci.sh, which diff full --stats dumps.)
    SystemConfig untouched;
    SystemConfig applied;
    Topology{}.applyTo(applied);
    EXPECT_EQ(applied.numNodes, untouched.numNodes);
    EXPECT_EQ(applied.numGpus, untouched.numGpus);
    EXPECT_EQ(applied.gpmsPerGpu, untouched.gpmsPerGpu);
    EXPECT_EQ(applied.smsPerGpu, untouched.smsPerGpu);
    EXPECT_EQ(applied.l2BytesPerGpu, untouched.l2BytesPerGpu);
    EXPECT_EQ(applied.dirEntriesPerGpm, untouched.dirEntriesPerGpm);
    EXPECT_EQ(applied.intraGpuHopLatency, untouched.intraGpuHopLatency);
    EXPECT_EQ(applied.interGpuHopLatency, untouched.interGpuHopLatency);
    EXPECT_EQ(applied.interNodeHopLatency,
              untouched.interNodeHopLatency);
    EXPECT_DOUBLE_EQ(applied.interGpmGBpsPerGpu,
                     untouched.interGpmGBpsPerGpu);
    EXPECT_DOUBLE_EQ(applied.interGpuGBpsPerLink,
                     untouched.interGpuGBpsPerLink);
    EXPECT_DOUBLE_EQ(applied.interNodeGBpsPerLink,
                     untouched.interNodeGBpsPerLink);
    EXPECT_DOUBLE_EQ(applied.dramGBpsPerGpu, untouched.dramGBpsPerGpu);
}

TEST(TopologySpec, JsonRoundTripIsIdentity)
{
    Topology t;
    t.nodes = 2;
    t.gpusPerNode = 2;
    t.gpmsPerGpu = 2;
    t.smsPerGpu = 8;
    t.interNodeGBps = 50.0;
    t.interNodeHopLatency = 2400;
    t.l2MBPerGpu = 2;
    const Topology r = Topology::parseJson(t.toJson(), "<inline>");
    EXPECT_EQ(r.nodes, t.nodes);
    EXPECT_EQ(r.gpusPerNode, t.gpusPerNode);
    EXPECT_EQ(r.gpmsPerGpu, t.gpmsPerGpu);
    EXPECT_EQ(r.smsPerGpu, t.smsPerGpu);
    EXPECT_DOUBLE_EQ(r.interNodeGBps, t.interNodeGBps);
    EXPECT_EQ(r.interNodeHopLatency, t.interNodeHopLatency);
    EXPECT_EQ(r.l2MBPerGpu, t.l2MBPerGpu);
    EXPECT_EQ(r.toJson(), t.toJson());
}

TEST(TopologySpec, AsymmetricLinkRatesApply)
{
    // Per-tier rates are independent knobs: a topology may declare a
    // node uplink both slower and slacker than the NVSwitch tier.
    const char *spec = R"({
        "nodes": 2, "gpusPerNode": 2, "gpmsPerGpu": 2, "smsPerGpu": 8,
        "link": { "interGpuGBps": 300, "interNodeGBps": 25,
                  "interNodeHopLatency": 4800 },
        "memory": { "l2MBPerGpu": 2 }
    })";
    SystemConfig cfg;
    Topology::parseJson(spec, "<inline>").applyTo(cfg);
    EXPECT_EQ(cfg.numNodes, 2u);
    EXPECT_EQ(cfg.numGpus, 4u);
    EXPECT_DOUBLE_EQ(cfg.interGpuGBpsPerLink, 300.0);
    EXPECT_DOUBLE_EQ(cfg.interNodeGBpsPerLink, 25.0);
    EXPECT_EQ(cfg.interNodeHopLatency, 4800u);
    // Untouched tiers keep their Table II defaults.
    EXPECT_DOUBLE_EQ(cfg.interGpmGBpsPerGpu, 2000.0);
    EXPECT_EQ(cfg.interGpuHopLatency, 600u);
}

TEST(TopologySpecDeath, StrictParserRejectsMalformedSpecs)
{
    auto dies = [](const char *spec) {
        EXPECT_EXIT(Topology::parseJson(spec, "<inline>"),
                    ::testing::ExitedWithCode(1), "");
    };
    dies("");                                  // no object at all
    dies("{");                                 // unterminated object
    dies("{ \"nodes\": 2 ");                   // missing brace
    dies("{ nodes: 2 }");                      // unquoted key
    dies("{ \"nodes\": }");                    // missing value
    dies("{ \"nodes\": 2 } trailing");         // trailing characters
    dies("{ \"frobnicate\": 3 }");             // unknown key
    dies("{ \"link\": { \"warpSpeed\": 9 } }");   // unknown link key
    dies("{ \"nodes\": 0 }");                  // zero-sized tier
    dies("{ \"gpusPerNode\": 0 }");            // zero-sized tier
    dies("{ \"gpmsPerGpu\": 2.5 }");           // fractional tier
    dies("{ \"nodes\": 33 }");                 // beyond the node mask
    dies("{ \"link\": { \"interNodeGBps\": 0 } }");   // zero rate
    dies("{ \"link\": { \"interNodeGBps\": -5 } }");  // negative rate
    dies("{ \"link\": { \"interGpuGBps\": \"fast\" } }"); // wrong type
}

TEST(TopologySpecDeath, ApplyValidatesTheResultingShape)
{
    // The parser accepts shape keys independently; applyTo runs the
    // full SystemConfig validation, so impossible combinations die
    // with the config layer's message rather than simulating.
    auto dies = [](Topology t) {
        SystemConfig cfg;
        EXPECT_EXIT(t.applyTo(cfg), ::testing::ExitedWithCode(1), "");
    };
    Topology wideNode;
    wideNode.gpusPerNode = 64; // > the 32-bit GPU sharer mask
    dies(wideNode);
    Topology oddSms;
    oddSms.gpmsPerGpu = 3;
    oddSms.smsPerGpu = 128; // not divisible by 3
    dies(oddSms);
    Topology flatLatency;
    flatLatency.nodes = 2;
    flatLatency.gpusPerNode = 2;
    flatLatency.interNodeHopLatency = 1; // zero LP-cut lookahead
    dies(flatLatency);
}

} // namespace
} // namespace hmg
