/**
 * @file
 * Topology-generalization tests: the protocols and the home-node
 * mapping must work for any M-GPM, N-GPU shape (the paper presents the
 * protocol for arbitrary M and N, evaluating 4x4). Runs the message-
 * passing litmus and a randomized trace under NHCC and HMG across a
 * sweep of machine shapes.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "gpu/simulator.hh"
#include "test_system.hh"
#include "trace/trace.hh"

namespace hmg
{
namespace
{

using Shape = std::tuple<int /*gpus*/, int /*gpms*/, int /*protocol*/>;

SystemConfig
shapedConfig(std::uint32_t gpus, std::uint32_t gpms, Protocol p)
{
    SystemConfig cfg;
    cfg.numGpus = gpus;
    cfg.gpmsPerGpu = gpms;
    cfg.smsPerGpu = 2 * gpms; // 2 SMs per GPM
    cfg.maxWarpsPerSm = 8;
    cfg.l1Bytes = 16 * 1024;
    cfg.l1Ways = 4;
    cfg.l2BytesPerGpu = gpms * 32 * 1024;
    cfg.dirEntriesPerGpm = 64;
    cfg.dirWays = 4;
    cfg.protocol = p;
    cfg.validate();
    return cfg;
}

class TopologySweep : public ::testing::TestWithParam<Shape>
{
  protected:
    SystemConfig
    cfg() const
    {
        auto [gpus, gpms, proto] = GetParam();
        return shapedConfig(static_cast<std::uint32_t>(gpus),
                            static_cast<std::uint32_t>(gpms),
                            static_cast<Protocol>(proto));
    }
};

TEST_P(TopologySweep, HomeMappingIsConsistent)
{
    SystemConfig c = cfg();
    System sys(c);
    // Place one page per GPM and check every GPU-home shares the system
    // home's local index.
    for (GpmId h = 0; h < c.totalGpms(); ++h) {
        Addr a = static_cast<Addr>(h) * c.osPageBytes;
        sys.pageTable().touch(a, h);
        EXPECT_EQ(sys.addressMap().systemHome(a), h);
        for (GpuId g = 0; g < c.numGpus; ++g) {
            GpmId gh = sys.addressMap().gpuHome(g, a);
            EXPECT_EQ(c.gpuOf(gh), g);
            EXPECT_EQ(c.localGpmOf(gh), c.localGpmOf(h));
        }
    }
}

TEST_P(TopologySweep, MessagePassingAcrossGpus)
{
    SystemConfig c = cfg();
    if (c.numGpus < 2)
        GTEST_SKIP();
    testing::DirectDrive d(c.protocol, c);

    Rng rng(5);
    for (int trial = 0; trial < 6; ++trial) {
        const Addr data = static_cast<Addr>(2 * trial) * c.osPageBytes;
        const Addr flag =
            static_cast<Addr>(2 * trial + 1) * c.osPageBytes;
        d.place(data, static_cast<GpmId>(rng.below(c.totalGpms())));
        d.place(flag, static_cast<GpmId>(rng.below(c.totalGpms())));
        const SmId writer = static_cast<SmId>(rng.below(c.totalSms()));
        const SmId reader = static_cast<SmId>(rng.below(c.totalSms()));

        d.load(reader, data); // stale seed
        Version v1 = d.store(writer, data);
        d.release(writer, Scope::Sys);
        Version v2 = d.store(writer, flag);

        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(reader, flag, Scope::Sys);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(reader, Scope::Sys);
        EXPECT_GE(d.load(reader, data), v1)
            << "gpus=" << c.numGpus << " gpms=" << c.gpmsPerGpu
            << " trial=" << trial;
    }
}

TEST_P(TopologySweep, RandomTraceCompletes)
{
    SystemConfig c = cfg();
    Rng rng(11);
    trace::Trace t;
    t.name = "topo-random";
    for (int k = 0; k < 2; ++k) {
        trace::Kernel ker;
        ker.ctas.resize(2 * c.totalGpms());
        for (auto &cta : ker.ctas) {
            cta.warps.resize(2);
            for (auto &w : cta.warps)
                for (int i = 0; i < 20; ++i) {
                    Addr a = rng.below(256) * 128;
                    if (rng.chance(0.2))
                        w.st(a, 1);
                    else if (rng.chance(0.1))
                        w.atom(a, Scope::Sys, 2);
                    else
                        w.ld(a, 1);
                }
        }
        t.kernels.push_back(std::move(ker));
    }
    Simulator sim(c);
    auto res = sim.run(t);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.ops"),
                     static_cast<double>(t.memOps()));
    EXPECT_EQ(sim.system().tracker().totalPendingSys(), 0u);
}

std::vector<Shape>
allShapes()
{
    std::vector<Shape> shapes;
    const std::pair<int, int> dims[] = {{2, 2}, {2, 4}, {4, 2},
                                        {4, 4}, {8, 2}, {1, 4}};
    for (auto [gpus, gpms] : dims)
        for (Protocol p : {Protocol::Nhcc, Protocol::Hmg})
            shapes.emplace_back(gpus, gpms, static_cast<int>(p));
    return shapes;
}

std::string
shapeName(const ::testing::TestParamInfo<Shape> &info)
{
    std::string n = toString(
        static_cast<Protocol>(std::get<2>(info.param)));
    return n + "_" + std::to_string(std::get<0>(info.param)) + "x" +
           std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologySweep,
                         ::testing::ValuesIn(allShapes()), shapeName);

} // namespace
} // namespace hmg
