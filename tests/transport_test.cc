/**
 * @file
 * Randomized property tests for the per-hop transport layer
 * (noc/port.hh, noc/network.hh), in the spirit of tests/sweep_test.cc:
 * under seeded random traffic — arbitrary (src, dst) pairs, message
 * types, and injection times — delivery order per (src, dst) must stay
 * FIFO, every message must be delivered exactly once, and two identical
 * runs must agree bit-for-bit on the full delivery schedule and every
 * reported statistic.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/message.hh"
#include "noc/network.hh"
#include "sim/engine.hh"

namespace hmg
{
namespace
{

struct Delivery
{
    Tick at;
    GpmId src;
    GpmId dst;
    std::uint32_t type;
    std::uint64_t seq; // per-(src,dst) injection sequence number

    bool
    operator==(const Delivery &o) const
    {
        return at == o.at && src == o.src && dst == o.dst &&
               type == o.type && seq == o.seq;
    }
};

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::string stats;
};

/**
 * Drive `count` random messages through a fresh Network: random source,
 * destination, and type, injected from engine events at random ticks so
 * injections interleave with in-flight traffic. Sequence numbers are
 * assigned per (src, dst) at injection time.
 */
RunResult
randomTraffic(std::uint64_t seed, std::size_t count)
{
    SystemConfig cfg;
    Engine e;
    Network net(e, cfg);
    Rng rng(seed);

    RunResult out;
    out.deliveries.reserve(count);
    const std::uint32_t gpms = cfg.totalGpms();
    std::vector<std::uint64_t> next_seq(gpms * gpms, 0);

    for (std::size_t i = 0; i < count; ++i) {
        const auto src = static_cast<GpmId>(rng.below(gpms));
        auto dst = static_cast<GpmId>(rng.below(gpms - 1));
        if (dst >= src)
            ++dst;
        const auto type =
            static_cast<MsgType>(rng.below(kNumMsgTypes));
        const Tick when = rng.below(5000);
        e.scheduleAt(when, [&e, &net, &next_seq, &out, src, dst, type,
                            gpms]() {
            const std::uint64_t seq = next_seq[src * gpms + dst]++;
            net.inject(
                {.src = src,
                 .dst = dst,
                 .type = type,
                 .onArrival = [&e, &out, src, dst, type, seq]() {
                     out.deliveries.push_back(
                         Delivery{e.now(), src, dst,
                                  static_cast<std::uint32_t>(type), seq});
                 }});
        });
    }
    e.run();

    StatRecorder r;
    net.reportStats(r, "noc");
    out.stats = r.toString();
    return out;
}

TEST(TransportProperty, RandomTrafficIsFifoPerPairAndLossless)
{
    for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
        const std::size_t count = 4000;
        RunResult run = randomTraffic(seed, count);
        ASSERT_EQ(run.deliveries.size(), count) << "seed " << seed;

        SystemConfig cfg;
        const std::uint32_t gpms = cfg.totalGpms();
        std::vector<std::uint64_t> expect(gpms * gpms, 0);
        Tick prev = 0;
        for (const Delivery &d : run.deliveries) {
            // The engine delivers in time order, and within each
            // (src, dst) pair the injection sequence may never reorder,
            // whatever mix of sizes and contention the path saw.
            EXPECT_GE(d.at, prev);
            prev = d.at;
            std::uint64_t &next = expect[d.src * gpms + d.dst];
            EXPECT_EQ(d.seq, next)
                << "seed " << seed << ": pair " << int(d.src) << "->"
                << int(d.dst) << " reordered at tick " << d.at;
            ++next;
        }
    }
}

TEST(TransportProperty, IdenticalSeedsAreBitIdentical)
{
    const RunResult a = randomTraffic(42, 4000);
    const RunResult b = randomTraffic(42, 4000);
    ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
    for (std::size_t i = 0; i < a.deliveries.size(); ++i)
        ASSERT_TRUE(a.deliveries[i] == b.deliveries[i]) << "index " << i;
    // Every stat — per-port byte counts, utilizations, queue depths,
    // delay histograms — must also agree exactly.
    EXPECT_EQ(a.stats, b.stats);
}

TEST(TransportProperty, DifferentSeedsDiffer)
{
    // Sanity check that the property tests exercise distinct schedules
    // rather than one degenerate case.
    const RunResult a = randomTraffic(1, 2000);
    const RunResult b = randomTraffic(2, 2000);
    EXPECT_NE(a.stats, b.stats);
}

} // namespace
} // namespace hmg
