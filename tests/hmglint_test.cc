/**
 * @file
 * hmglint's analysis families, positive and negative.
 *
 * Mirrors the retry_model_test pattern: each family must (a) run clean
 * on the real artifact — the shipped transition tables, the real NoC
 * topology, the actual source tree — and (b) catch its seeded bug with
 * a file/row-attributed counterexample. Source-scanning families are
 * additionally exercised against small fixture trees written to a temp
 * directory, one per rule, so every check has a red test independent
 * of the (clean) repository.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "verify/lint/cdg.hh"
#include "verify/lint/determinism.hh"
#include "verify/lint/lint.hh"
#include "verify/lint/liveness.hh"
#include "verify/lint/lockset.hh"
#include "verify/lint/statkeys.hh"
#include "verify/lint/table_lint.hh"

namespace fs = std::filesystem;
using namespace hmg::verify::lint;

namespace
{

const Finding *
findCheck(const LintReport &r, const std::string &check)
{
    for (const Finding &f : r.findings())
        if (f.check == check)
            return &f;
    return nullptr;
}

int
countCheck(const LintReport &r, const std::string &check)
{
    int n = 0;
    for (const Finding &f : r.findings())
        if (f.check == check)
            ++n;
    return n;
}

/** A throwaway `<tmp>/<name>/src` tree the scanners can be pointed at. */
class FixtureTree
{
  public:
    explicit FixtureTree(const std::string &name)
        : root_(fs::temp_directory_path() / ("hmglint_" + name))
    {
        fs::remove_all(root_);
        fs::create_directories(root_ / "src");
    }
    ~FixtureTree() { fs::remove_all(root_); }

    void
    write(const std::string &rel, const std::string &content)
    {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << content;
    }

    std::string root() const { return root_.string(); }

  private:
    fs::path root_;
};

} // namespace

// ===================================================================
// Family (a): spec-table structure.
// ===================================================================

TEST(TableLint, CleanOnShippedTables)
{
    LintReport r;
    analyzeTables(TableLintOptions{}, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << f.table << " row " << f.row << " ["
                      << f.check << "]: " << f.message;
    EXPECT_TRUE(r.clean());
    // NHCC flat + HMG sys/node/GPU home tiers.
    EXPECT_EQ(r.stats().at("table.tables"), 4u);
}

TEST(TableLint, SeededDeadRowCaughtWithMaskingRow)
{
    TableLintOptions o;
    o.seedDeadRow = true;
    LintReport r;
    analyzeTables(o, r);
    const Finding *f = findCheck(r, "dead-row");
    ASSERT_NE(f, nullptr) << "seeded dead row not reported";
    EXPECT_EQ(f->table, std::string("hmg-gpu-home"));
    EXPECT_EQ(f->file, std::string("src/verify/tables.cc"));
    EXPECT_GE(f->row, 0);
    // The counterexample names both the dead row and its masker.
    ASSERT_EQ(f->counterexample.size(), 2u);
    EXPECT_NE(f->counterexample[0].find("dead row"), std::string::npos);
    EXPECT_NE(f->counterexample[1].find("masked by row"),
              std::string::npos);
}

TEST(TableLint, SeededRunIsDeterministic)
{
    TableLintOptions o;
    o.seedDeadRow = true;
    LintReport a, b;
    analyzeTables(o, a);
    analyzeTables(o, b);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ===================================================================
// Family (b): channel-dependency deadlock freedom.
// ===================================================================

TEST(CdgLint, RealTransportIsAcyclic)
{
    LintReport r;
    analyzeCdg(CdgOptions{}, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << "[" << f.check << "] " << f.message;
    EXPECT_TRUE(r.clean());
    // The escape edges (unbounded NIC) must exist — they are the
    // reason the remaining graph is acyclic, not an empty graph.
    EXPECT_GT(r.stats().at("cdg.escape_edges"), 0u);
    EXPECT_GT(r.stats().at("cdg.edges"), 0u);
    // 14 two-level hop classes + the node-uplink tier's 4.
    EXPECT_EQ(r.stats().at("cdg.msg_classes"), 18u);
}

TEST(CdgLint, LargerInstanceStillAcyclic)
{
    CdgOptions o;
    o.numGpus = 4;
    o.gpmsPerGpu = 4;
    LintReport r;
    analyzeCdg(o, r);
    EXPECT_TRUE(r.clean());
}

TEST(CdgLint, SeededBoundedNicCycleCaught)
{
    CdgOptions o;
    o.seedCdgCycle = true;
    LintReport r;
    analyzeCdg(o, r);
    const Finding *f = findCheck(r, "cycle");
    ASSERT_NE(f, nullptr) << "seeded CDG cycle not reported";
    EXPECT_EQ(f->file, std::string("src/noc/network.cc"));
    // A real cycle: at least nic -> egress -> ingress -> nic, each
    // counterexample line one "holds while waiting" edge.
    ASSERT_GE(f->counterexample.size(), 3u);
    for (const std::string &edge : f->counterexample)
        EXPECT_NE(edge.find("-->"), std::string::npos) << edge;
    // The loop must close: first edge's source is last edge's target.
    const std::string firstNode =
        f->counterexample.front().substr(0,
            f->counterexample.front().find(' '));
    EXPECT_NE(f->counterexample.back().find("--> " + firstNode),
              std::string::npos);
}

// ===================================================================
// Family (c): determinism analysis — real tree, then per-rule
// fixtures.
// ===================================================================

TEST(DeterminismLint, CleanOnRealTree)
{
    DeterminismOptions o;
    o.root = HMG_SOURCE_ROOT;
    LintReport r;
    analyzeDeterminism(o, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.check
                      << "]: " << f.message;
    EXPECT_TRUE(r.clean());
    // Sanity: the scan actually saw the tree.
    EXPECT_GT(r.stats().at("determinism.files"), 50u);
    EXPECT_GT(r.stats().at("determinism.suppressions"), 10u);
}

TEST(DeterminismLint, UnannotatedDeclAndIterationFlagged)
{
    FixtureTree t("decl_iter");
    t.write("src/a.hh",
            "#include <unordered_map>\n"
            "inline std::unordered_map<int, int> table;\n");
    t.write("src/b.cc",
            "#include \"a.hh\"\n"
            "int f() {\n"
            "    int n = 0;\n"
            "    for (const auto &kv : table)\n"
            "        n += kv.second;\n"
            "    return n;\n"
            "}\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    const Finding *decl = findCheck(r, "unordered-decl");
    ASSERT_NE(decl, nullptr);
    EXPECT_EQ(decl->file, std::string("src/a.hh"));
    EXPECT_EQ(decl->line, 2);
    const Finding *iter = findCheck(r, "unordered-iteration");
    ASSERT_NE(iter, nullptr) << "iteration three lines from the "
                                "declaration not flagged";
    EXPECT_EQ(iter->file, std::string("src/b.cc"));
    EXPECT_EQ(iter->line, 4);
    // The iteration finding points back at the declaration.
    ASSERT_FALSE(iter->counterexample.empty());
    EXPECT_NE(iter->counterexample[0].find("src/a.hh:2"),
              std::string::npos);
}

TEST(DeterminismLint, DeclAnnotationSuppressesBothSites)
{
    FixtureTree t("decl_ok");
    t.write("src/a.hh",
            "#include <unordered_map>\n"
            "// det-ok: probed by key below, iteration feeds a sort\n"
            "inline std::unordered_map<int, int> table;\n");
    t.write("src/b.cc",
            "#include \"a.hh\"\n"
            "int f() {\n"
            "    int n = 0;\n"
            "    for (const auto &kv : table)\n"
            "        n += kv.second;\n"
            "    return n;\n"
            "}\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    EXPECT_TRUE(r.clean()) << r.toText();
}

TEST(DeterminismLint, ExplicitBeginIterationFlagged)
{
    FixtureTree t("begin_iter");
    t.write("src/a.cc",
            "#include <unordered_set>\n"
            "// det-ok: membership probes only\n"
            "std::unordered_set<int> seen;\n"
            "int first() { return *seen.begin(); }\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    // The decl annotation covers .begin() too (declOk), so move the
    // container out of the annotation's reach instead.
    EXPECT_TRUE(r.clean());

    FixtureTree t2("begin_iter2");
    t2.write("src/a.cc",
             "#include <unordered_set>\n"
             "std::unordered_set<int> seen;\n"
             "int first() { return *seen.begin(); }\n");
    o.root = t2.root();
    LintReport r2;
    analyzeDeterminism(o, r2);
    const Finding *iter = findCheck(r2, "unordered-iteration");
    ASSERT_NE(iter, nullptr);
    EXPECT_EQ(iter->line, 3);
}

TEST(DeterminismLint, EntropySourcesFlaggedEvenInsideComments)
{
    FixtureTree t("entropy");
    t.write("src/a.cc",
            "#include <chrono>\n"
            "#include <cstdlib>\n"
            "// text mentioning random_device in a comment is fine\n"
            "const char *s = \"time(nullptr) in a string is fine\";\n"
            "long seed() { return time(nullptr); }\n"
            "auto tick() { return std::chrono::steady_clock::now(); }\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    EXPECT_EQ(countCheck(r, "entropy"), 2)
        << "exactly the two code uses, not the comment or string: "
        << r.toText();
}

TEST(DeterminismLint, SimSyncOnlyPolicedUnderSrcSim)
{
    const std::string body = "#include <mutex>\n"
                             "class Shard { std::mutex m_; };\n";
    FixtureTree t("simsync");
    t.write("src/sim/shard.hh", body);
    t.write("src/gpu/shard.hh", body);
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    EXPECT_EQ(countCheck(r, "sim-sync"), 1);
    const Finding *f = findCheck(r, "sim-sync");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, std::string("src/sim/shard.hh"));
}

TEST(DeterminismLint, FloatAccumulationInHashOrderFlagged)
{
    // Both the declaration and the iteration are annotated; the
    // accumulation sits far enough below the annotations that only
    // the order-sensitivity rule can catch it.
    FixtureTree t("float_acc");
    t.write("src/a.cc",
            "#include <unordered_map>\n"
            "// det-ok: aggregation is order-insensitive (ha!)\n"
            "std::unordered_map<int, double> weights;\n"
            "double total;\n"
            "void fold() {\n"
            "    // det-ok: see above\n"
            "    for (const auto &kv : weights) {\n"
            "        int pad1 = 0;\n"
            "        (void)pad1;\n"
            "        int pad2 = 0;\n"
            "        (void)pad2;\n"
            "        total += kv.second;\n"
            "    }\n"
            "}\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    const Finding *f = findCheck(r, "float-accumulation");
    ASSERT_NE(f, nullptr) << r.toText();
    EXPECT_EQ(f->line, 12);
    EXPECT_NE(f->message.find("total"), std::string::npos);
}

TEST(DeterminismLint, StaleSuppressionFlagged)
{
    FixtureTree t("stale");
    t.write("src/a.cc",
            "// det-ok: this once justified a map deleted in a\n"
            "// refactor; nothing below needs it now\n"
            "int plain() { return 42; }\n");
    DeterminismOptions o;
    o.root = t.root();
    LintReport r;
    analyzeDeterminism(o, r);
    const Finding *f = findCheck(r, "stale-suppression");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 1);
}

TEST(DeterminismLint, OutputIsDeterministic)
{
    DeterminismOptions o;
    o.root = HMG_SOURCE_ROOT;
    LintReport a, b;
    analyzeDeterminism(o, a);
    analyzeDeterminism(o, b);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ===================================================================
// Satellite: the stats-key registry.
// ===================================================================

TEST(StatKeysLint, CleanOnRealTree)
{
    StatKeysOptions o;
    o.root = HMG_SOURCE_ROOT;
    LintReport r;
    analyzeStatKeys(o, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.check
                      << "]: " << f.message;
    EXPECT_TRUE(r.clean());
    // The registry reconstruction found the composed namespaces the
    // system wires at the top level ("noc", "pdes", ...).
    EXPECT_GE(r.stats().at("statkeys.roots"), 2u);
    EXPECT_GT(r.stats().at("statkeys.record_sites"), 50u);
}

TEST(StatKeysLint, DuplicateKeyInOneScopeFlagged)
{
    FixtureTree t("statdup");
    t.write("src/a.cc",
            "#include \"common/stats.hh\"\n"
            "void report(hmg::StatRecorder &r, const std::string &p,\n"
            "            double a, double b) {\n"
            "    r.record(p + \".bytes\", a);\n"
            "    r.record(p + \".msgs\", a);\n"
            "    r.record(p + \".bytes\", b);\n"
            "}\n");
    StatKeysOptions o;
    o.root = t.root();
    LintReport r;
    analyzeStatKeys(o, r);
    const Finding *f = findCheck(r, "duplicate-key");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 6);
    ASSERT_FALSE(f->counterexample.empty());
    EXPECT_NE(f->counterexample[0].find("src/a.cc:4"),
              std::string::npos);
}

TEST(StatKeysLint, StatkeyOkSuppressesDuplicate)
{
    FixtureTree t("statdup_ok");
    t.write("src/a.cc",
            "#include \"common/stats.hh\"\n"
            "void report(hmg::StatRecorder &r, const std::string &p,\n"
            "            double a, double b) {\n"
            "    r.record(p + \".bytes\", a);\n"
            "    // statkey-ok: second record is the retry share,\n"
            "    // summed into the same key on purpose\n"
            "    r.record(p + \".bytes\", b);\n"
            "}\n");
    StatKeysOptions o;
    o.root = t.root();
    LintReport r;
    analyzeStatKeys(o, r);
    EXPECT_TRUE(r.clean()) << r.toText();
}

TEST(StatKeysLint, AbsoluteKeyCollidingWithComposedRootFlagged)
{
    FixtureTree t("statroot");
    t.write("src/top.cc",
            "#include \"common/stats.hh\"\n"
            "void top(hmg::StatRecorder &r) {\n"
            "    net_->reportStats(r, \"noc\");\n"
            "}\n");
    t.write("src/intruder.cc",
            "#include \"common/stats.hh\"\n"
            "void dump(hmg::StatRecorder &r) {\n"
            "    r.record(\"noc.sideband.bytes\", 1.0);\n"
            "    r.record(\"debug.sideband.bytes\", 1.0);\n"
            "}\n");
    StatKeysOptions o;
    o.root = t.root();
    LintReport r;
    analyzeStatKeys(o, r);
    EXPECT_EQ(countCheck(r, "root-collision"), 1) << r.toText();
    const Finding *f = findCheck(r, "root-collision");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, std::string("src/intruder.cc"));
    EXPECT_EQ(f->line, 3);
    EXPECT_NE(f->message.find("src/top.cc:3"), std::string::npos);
}

// ===================================================================
// Family (d): transient-state liveness + the composed proof.
// ===================================================================

TEST(LivenessLint, ShippedTablesHaveNoTransientStalls)
{
    LintReport r;
    analyzeLiveness(LivenessOptions{}, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << "[" << f.check << "] " << f.message;
    EXPECT_TRUE(r.clean());
    // The non-blocking claim discharged structurally: every row of
    // every table resolves in place, so the wait-for graph is empty
    // and the composed graph degenerates to the pure transport CDG.
    EXPECT_EQ(r.stats().at("liveness.transient_rows"), 0u);
    EXPECT_EQ(r.stats().at("liveness.ack_rows"), 0u);
    EXPECT_EQ(r.stats().at("liveness.wait_edges"), 0u);
    EXPECT_EQ(r.stats().at("composed.protocol_stalls"), 0u);
    EXPECT_GT(r.stats().at("composed.edges"), 0u);
}

TEST(LivenessLint, ScaleoutShapeComposedProofAcyclic)
{
    // The largest example topology's shape: 8 nodes x 8 GPUs x 4 GPMs.
    LivenessOptions o;
    o.numGpus = 64;
    o.gpmsPerGpu = 4;
    o.numNodes = 8;
    LintReport r;
    analyzeLiveness(o, r);
    EXPECT_TRUE(r.clean()) << r.toText();
}

TEST(LivenessLint, SeededTransientRowCaughtAsLivelock)
{
    LivenessOptions o;
    o.seedLivelock = true;
    LintReport r;
    analyzeLiveness(o, r);
    const Finding *f = findCheck(r, "livelock");
    ASSERT_NE(f, nullptr) << "seeded transient row not reported";
    EXPECT_EQ(f->table, std::string("hmg-gpu-home"));
    EXPECT_EQ(f->file, std::string("src/verify/tables.cc"));
    EXPECT_NE(f->message.find("livelock cycle"), std::string::npos);
    // The counterexample spells the length-2 cycle: the stall, the
    // held ingress its completion needs, and the closing argument.
    ASSERT_EQ(f->counterexample.size(), 3u);
    EXPECT_NE(f->counterexample[0].find("stalls awaiting"),
              std::string::npos);
    EXPECT_NE(f->counterexample[1].find("holds"), std::string::npos);
    EXPECT_NE(f->counterexample[2].find("cycle closes"),
              std::string::npos);
    EXPECT_EQ(r.stats().at("liveness.transient_rows"), 1u);
}

TEST(LivenessLint, SeededStallClosesComposedTransportCycle)
{
    // The same seeded stall must also surface in the composed proof:
    // the protocol edge invalidates the unbounded-NIC escape and the
    // credit pools close a full-system deadlock loop.
    LivenessOptions o;
    o.seedLivelock = true;
    LintReport r;
    analyzeLiveness(o, r);
    const Finding *f = findCheck(r, "cycle");
    ASSERT_NE(f, nullptr) << "composed cycle not reported";
    EXPECT_EQ(f->family, std::string("composed"));
    EXPECT_NE(f->message.find("composed protocol-transport"),
              std::string::npos);
    ASSERT_GE(f->counterexample.size(), 3u);
    for (const std::string &edge : f->counterexample)
        EXPECT_NE(edge.find("-->"), std::string::npos) << edge;
    // The loop must close on itself.
    const std::string firstNode =
        f->counterexample.front().substr(0,
            f->counterexample.front().find(' '));
    EXPECT_NE(f->counterexample.back().find("--> " + firstNode),
              std::string::npos);
    EXPECT_GT(r.stats().at("composed.protocol_stalls"), 0u);
}

TEST(LivenessLint, OutputIsDeterministic)
{
    LivenessOptions o;
    o.seedLivelock = true;
    LintReport a, b;
    analyzeLiveness(o, a);
    analyzeLiveness(o, b);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ===================================================================
// Family (e): the LP-safety lockset analyzer — real tree, then
// per-rule fixtures.
// ===================================================================

TEST(LocksetLint, CleanOnRealTree)
{
    LocksetOptions o;
    o.root = HMG_SOURCE_ROOT;
    LintReport r;
    analyzeLockset(o, r);
    for (const Finding &f : r.findings())
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.check
                      << "]: " << f.message;
    EXPECT_TRUE(r.clean());
    // The scan saw the discipline it polices: the two shard-guarded
    // maps (MemoryState, PageTable), the barrier/counter atomics, the
    // posted-closure sites, and the lp-ok justifications.
    EXPECT_GE(r.stats().at("lockset.guarded_fields"), 2u);
    EXPECT_GE(r.stats().at("lockset.guarded_uses"), 10u);
    EXPECT_GE(r.stats().at("lockset.atomic_members"), 4u);
    EXPECT_GE(r.stats().at("lockset.atomic_uses"), 10u);
    EXPECT_GE(r.stats().at("lockset.post_sites"), 5u);
    EXPECT_GE(r.stats().at("lockset.suppressions"), 5u);
}

TEST(LocksetLint, SeededUnlockedAccessCaught)
{
    LocksetOptions o;
    o.root = HMG_SOURCE_ROOT;
    o.seedLockset = true;
    LintReport r;
    analyzeLockset(o, r);
    const Finding *f = findCheck(r, "unlocked-access");
    ASSERT_NE(f, nullptr) << "seeded unlocked access not reported";
    EXPECT_EQ(f->file, std::string("src/mem/__seed_lockset__.cc"));
    EXPECT_NE(f->message.find("unlocked access"), std::string::npos);
    ASSERT_EQ(f->counterexample.size(), 3u);
    EXPECT_NE(f->counterexample[0].find("guarded by mutex 'mu'"),
              std::string::npos);
}

TEST(LocksetLint, UnlockedUseFlaggedLockedUseClean)
{
    FixtureTree t("lockset_e1");
    t.write("src/shard.hh",
            "struct Shard\n"
            "{\n"
            "    std::mutex mu;\n"
            "    std::unordered_map<int, int> lines;\n"
            "};\n");
    t.write("src/shard.cc",
            "#include \"shard.hh\"\n"
            "int peek(Shard &s)\n"
            "{\n"
            "    return s.lines.size();\n"
            "}\n"
            "int safe(Shard &s)\n"
            "{\n"
            "    std::lock_guard<std::mutex> g(s.mu);\n"
            "    return s.lines.count(1);\n"
            "}\n");
    LocksetOptions o;
    o.root = t.root();
    LintReport r;
    analyzeLockset(o, r);
    EXPECT_EQ(countCheck(r, "unlocked-access"), 1) << r.toText();
    const Finding *f = findCheck(r, "unlocked-access");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, std::string("src/shard.cc"));
    EXPECT_EQ(f->line, 4);
}

TEST(LocksetLint, LpOkSuppressesAndStaysLoadBearing)
{
    FixtureTree t("lockset_lpok");
    t.write("src/shard.hh",
            "struct Shard\n"
            "{\n"
            "    std::mutex mu;\n"
            "    std::unordered_map<int, int> lines;\n"
            "};\n");
    t.write("src/shard.cc",
            "#include \"shard.hh\"\n"
            "int peek(Shard &s)\n"
            "{\n"
            "    // lp-ok: stats path, runs after workers joined\n"
            "    return s.lines.size();\n"
            "}\n");
    LocksetOptions o;
    o.root = t.root();
    LintReport r;
    analyzeLockset(o, r);
    // Neither an unlocked-access nor a stale-suppression: the
    // annotation excuses the access, the access keeps it alive.
    EXPECT_TRUE(r.clean()) << r.toText();
    EXPECT_EQ(r.stats().at("lockset.suppressions"), 1u);
}

TEST(LocksetLint, StaleLpOkFlagged)
{
    FixtureTree t("lockset_stale");
    t.write("src/plain.cc",
            "// lp-ok: once excused an unlocked walk, since deleted\n"
            "int plain() { return 42; }\n");
    LocksetOptions o;
    o.root = t.root();
    LintReport r;
    analyzeLockset(o, r);
    const Finding *f = findCheck(r, "stale-suppression");
    ASSERT_NE(f, nullptr) << r.toText();
    EXPECT_EQ(f->file, std::string("src/plain.cc"));
    EXPECT_EQ(f->line, 1);
}

TEST(LocksetLint, AtomicDisciplineFlagged)
{
    FixtureTree t("lockset_e2");
    t.write("src/ctr.hh",
            "struct Ctr\n"
            "{\n"
            "    std::atomic<int> hits{0};\n"
            "};\n");
    t.write("src/ctr.cc",
            "#include \"ctr.hh\"\n"
            "int sample(Ctr &c)\n"
            "{\n"
            "    return c.hits.load();\n"
            "}\n"
            "int good(Ctr &c)\n"
            "{\n"
            "    return c.hits.load(std::memory_order_relaxed);\n"
            "}\n"
            "void bump(Ctr &c)\n"
            "{\n"
            "    c.hits++;\n"
            "}\n");
    LocksetOptions o;
    o.root = t.root();
    LintReport r;
    analyzeLockset(o, r);
    EXPECT_EQ(countCheck(r, "implicit-seq-cst"), 1) << r.toText();
    EXPECT_EQ(countCheck(r, "atomic-raw-access"), 1) << r.toText();
    const Finding *seqcst = findCheck(r, "implicit-seq-cst");
    ASSERT_NE(seqcst, nullptr);
    EXPECT_EQ(seqcst->line, 4);
    const Finding *raw = findCheck(r, "atomic-raw-access");
    ASSERT_NE(raw, nullptr);
    EXPECT_EQ(raw->line, 12);
}

TEST(LocksetLint, PostedBlanketRefCaptureFlagged)
{
    FixtureTree t("lockset_e3");
    t.write("src/sched.cc",
            "void schedule(Engine &e, int x)\n"
            "{\n"
            "    e.post(0, [&]() { consume(x); });\n"
            "    e.post(0, [x]() { consume(x); });\n"
            "}\n");
    LocksetOptions o;
    o.root = t.root();
    LintReport r;
    analyzeLockset(o, r);
    EXPECT_EQ(countCheck(r, "posted-ref-capture"), 1) << r.toText();
    const Finding *f = findCheck(r, "posted-ref-capture");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 3);
    EXPECT_EQ(r.stats().at("lockset.post_sites"), 2u);
}

TEST(LocksetLint, OutputIsDeterministic)
{
    LocksetOptions o;
    o.root = HMG_SOURCE_ROOT;
    LintReport a, b;
    analyzeLockset(o, a);
    analyzeLockset(o, b);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ===================================================================
// Report plumbing.
// ===================================================================

TEST(LintReport, JsonEscapesAndCounts)
{
    LintReport r;
    Finding f;
    f.family = "test";
    f.check = "quote";
    f.file = "a\"b.cc";
    f.message = "line1\nline2\ttab";
    r.add(std::move(f));
    Finding w;
    w.family = "test";
    w.check = "warn";
    w.severity = Severity::Warning;
    r.add(std::move(w));
    EXPECT_EQ(r.errors(), 1u);
    EXPECT_EQ(r.warnings(), 1u);
    EXPECT_FALSE(r.clean());
    const std::string j = r.toJson();
    EXPECT_NE(j.find("a\\\"b.cc"), std::string::npos);
    EXPECT_NE(j.find("line1\\nline2\\ttab"), std::string::npos);
}

TEST(LintReport, SarifCarriesSameFindingsAsJson)
{
    LintReport r;
    Finding f;
    f.family = "lockset";
    f.check = "unlocked-access";
    f.file = "src/x.cc";
    f.line = 42;
    f.message = "unlocked access to 'lines'";
    f.counterexample = {"declared at src/x.hh:3", "no lock in extent"};
    r.add(std::move(f));
    Finding w;
    w.family = "liveness";
    w.check = "ack-stall";
    w.severity = Severity::Warning;
    w.file = "src/verify/tables.cc";
    w.table = "hmg-gpu-home";
    w.row = 9;
    w.message = "row awaits acks";
    r.add(std::move(w));
    r.stat("lockset.files", 7);

    const std::string sarif = r.toSarif();
    // SARIF 2.1.0 skeleton.
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"hmglint\""), std::string::npos);
    // One reportingDescriptor per family/check, results referencing
    // them by id and index.
    EXPECT_NE(sarif.find("\"id\": \"lockset/unlocked-access\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"id\": \"liveness/ack-stall\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleIndex\": 1"), std::string::npos);
    // Severity mapping and locations.
    EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
    // Round-trip: every message, file and counterexample line of the
    // JSON report appears in the SARIF log too.
    for (const Finding &g : r.findings()) {
        EXPECT_NE(sarif.find(jsonEscape(g.message)), std::string::npos);
        EXPECT_NE(sarif.find(jsonEscape(g.file)), std::string::npos);
        for (const std::string &c : g.counterexample)
            EXPECT_NE(sarif.find(jsonEscape(c)), std::string::npos);
    }
    // Stats ride in the run-level property bag.
    EXPECT_NE(sarif.find("\"lockset.files\": 7"), std::string::npos);
}

TEST(LintReport, SarifIsByteDeterministic)
{
    LivenessOptions o;
    o.seedLivelock = true;
    LintReport a, b;
    analyzeLiveness(o, a);
    analyzeLiveness(o, b);
    EXPECT_EQ(a.toSarif(), b.toSarif());
}

// ===================================================================
// Incremental mode: the warm run must replay the cold run's stdout
// byte for byte (the repeat-run guarantee, extended to the cache).
// ===================================================================

#ifdef HMG_HMGLINT_BIN
namespace
{

std::string
capture(const std::string &cmd, int &exitCode)
{
    std::string out;
    FILE *p = popen(cmd.c_str(), "r");
    if (!p) {
        exitCode = -1;
        return out;
    }
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), p)) > 0)
        out.append(buf, n);
    exitCode = pclose(p);
    return out;
}

} // namespace

TEST(IncrementalCache, WarmRunReplaysColdBytes)
{
    const fs::path dir =
        fs::temp_directory_path() / "hmglint_cache_test";
    fs::remove_all(dir);
    const fs::path cache = dir / "lint.cache";
    const std::string cmd = std::string(HMG_HMGLINT_BIN) + " --root " +
                            HMG_SOURCE_ROOT + " --incremental" +
                            " --cache-file " + cache.string() +
                            " 2>/dev/null";
    int cold_rc = -1, warm_rc = -1;
    const std::string cold = capture(cmd, cold_rc);
    EXPECT_TRUE(fs::exists(cache)) << "cold run wrote no cache";
    const std::string warm = capture(cmd, warm_rc);
    EXPECT_EQ(cold_rc, 0);
    EXPECT_EQ(warm_rc, 0);
    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);
    fs::remove_all(dir);
}
#endif
