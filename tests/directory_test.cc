/**
 * @file
 * Unit tests for the coherence directory: entry lifecycle, hierarchical
 * sharer sets, sector coverage, eviction behaviour (Table I "Replace
 * Dir Entry") and the Section VII-C sizing arithmetic.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/directory.hh"

namespace hmg
{
namespace
{

TEST(DirEntry, SharerSets)
{
    DirEntry e;
    EXPECT_FALSE(e.hasSharers());
    e.addGpm(2);
    e.addGpu(1);
    e.addGpu(3);
    EXPECT_TRUE(e.hasSharers());
    EXPECT_TRUE(e.hasGpm(2));
    EXPECT_FALSE(e.hasGpm(1));
    EXPECT_TRUE(e.hasGpu(3));
    EXPECT_EQ(e.sharerCount(), 3u);
    e.dropGpu(3);
    e.dropGpm(2);
    EXPECT_EQ(e.sharerCount(), 1u);
}

TEST(Directory, FindMissOnEmpty)
{
    Directory d(64, 8, 512);
    EXPECT_EQ(d.find(0x1234), nullptr);
    EXPECT_EQ(d.lookups(), 1u);
    EXPECT_EQ(d.hits(), 0u);
}

TEST(Directory, AllocateAndFindBySector)
{
    Directory d(64, 8, 512);
    DirEntry *e = d.allocate(0x1000);
    e->addGpm(1);
    // Any address in the same 512 B sector resolves to the same entry.
    DirEntry *f = d.find(0x11ff);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->hasGpm(1));
    // The next sector is a different entry.
    EXPECT_EQ(d.find(0x1200), nullptr);
    EXPECT_EQ(d.validCount(), 1u);
}

TEST(Directory, AllocateIsIdempotentPerSector)
{
    Directory d(64, 8, 512);
    DirEntry *e = d.allocate(0x1000);
    e->addGpu(2);
    DirEntry *f = d.allocate(0x1040);
    EXPECT_EQ(e, f);
    EXPECT_TRUE(f->hasGpu(2));
    EXPECT_EQ(d.allocations(), 1u);
}

TEST(Directory, EvictionReturnsVictim)
{
    // One set of 2 ways: the third distinct sector in that set evicts
    // the LRU entry, whose sharers the protocol must invalidate.
    Directory d(2, 2, 512);
    d.allocate(0 * 512)->addGpm(3);
    d.allocate(2 * 512)->addGpu(1); // sets: sector % 2
    d.find(0 * 512);                // make sector 2*512 the LRU victim
    DirEntry victim;
    d.allocate(4 * 512, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.sector, 2u * 512);
    EXPECT_TRUE(victim.hasGpu(1));
    EXPECT_EQ(d.evictions(), 1u);
    // The evicted sector is gone; the survivor remains.
    EXPECT_EQ(d.find(2 * 512), nullptr);
    EXPECT_NE(d.find(0), nullptr);
}

TEST(Directory, RemoveTransitionsToInvalid)
{
    Directory d(64, 8, 512);
    d.allocate(0x2000)->addGpm(0);
    EXPECT_TRUE(d.remove(0x2040));
    EXPECT_EQ(d.find(0x2000), nullptr);
    EXPECT_FALSE(d.remove(0x2000));
}

TEST(Directory, FreshEntryHasClearedSharers)
{
    Directory d(2, 2, 512);
    d.allocate(0)->addGpm(1);
    d.allocate(2 * 512)->addGpm(2);
    DirEntry victim;
    DirEntry *e = d.allocate(4 * 512, &victim);
    EXPECT_FALSE(e->hasSharers());
}

TEST(Directory, TableTwoGeometry)
{
    SystemConfig cfg;
    Directory d(cfg.dirEntriesPerGpm, cfg.dirWays,
                cfg.cacheLineBytes * cfg.dirLinesPerEntry);
    EXPECT_EQ(d.numSets() * d.ways(), 12u * 1024);
    EXPECT_EQ(d.sectorBytes(), 512u);
}

TEST(Directory, HardwareCostArithmetic)
{
    // Section VII-C: 6 sharer bits + 1 state bit + 48 tag bits = 55
    // bits per entry; 12K entries -> ~84 KB per GPM, ~2.7% of the 3 MB
    // L2 slice.
    SystemConfig cfg;
    const std::uint32_t bits_per_entry = cfg.dirSharerBits() + 1 + 48;
    EXPECT_EQ(bits_per_entry, 55u);
    const double kb =
        bits_per_entry * static_cast<double>(cfg.dirEntriesPerGpm) / 8.0 /
        1024.0;
    EXPECT_NEAR(kb, 82.5, 2.0); // the paper rounds to 84 KB
    const double pct = kb * 1024.0 /
                       static_cast<double>(cfg.l2BytesPerGpm()) * 100.0;
    EXPECT_NEAR(pct, 2.7, 0.2);
}

TEST(Directory, ManySectorsNoAliasing)
{
    Directory d(1024, 8, 512);
    for (Addr s = 0; s < 1024; ++s)
        d.allocate(s * 512)->addGpm(static_cast<std::uint32_t>(s % 4));
    EXPECT_EQ(d.validCount(), 1024u);
    for (Addr s = 0; s < 1024; ++s) {
        DirEntry *e = d.find(s * 512);
        ASSERT_NE(e, nullptr);
        EXPECT_TRUE(e->hasGpm(static_cast<std::uint32_t>(s % 4)));
    }
}

} // namespace
} // namespace hmg
