/**
 * @file
 * Unit tests for the set-associative tag array and the write-through
 * cache model (L1/L2 storage behaviour).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/tag_array.hh"

namespace hmg
{
namespace
{

TEST(TagArray, InsertAndLookup)
{
    TagArray t(/*sets=*/4, /*ways=*/2, /*line=*/128);
    EXPECT_EQ(t.lookup(0x100), nullptr);
    CacheLine *l = t.insert(0x100);
    l->version = 7;
    CacheLine *found = t.lookup(0x100);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->version, 7u);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(TagArray, LruVictimSelection)
{
    TagArray t(1, 2, 128);
    t.insert(0x000);
    t.insert(0x080);
    // Touch line 0 so line 0x080 becomes LRU.
    t.lookup(0x000);
    CacheLine evicted;
    t.insert(0x100, &evicted);
    ASSERT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.addr, 0x080u);
    EXPECT_NE(t.lookup(0x000), nullptr);
    EXPECT_EQ(t.lookup(0x080), nullptr);
}

TEST(TagArray, ReinsertSameLineKeepsVersion)
{
    TagArray t(4, 2, 128);
    t.insert(0x100)->version = 3;
    CacheLine evicted;
    CacheLine *l = t.insert(0x100, &evicted);
    EXPECT_FALSE(evicted.valid);
    EXPECT_EQ(l->version, 3u);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(TagArray, InvalidateRangeAndAll)
{
    TagArray t(64, 4, 128);
    for (Addr a = 0; a < 64 * 128; a += 128)
        t.insert(a);
    EXPECT_EQ(t.validCount(), 64u);
    EXPECT_EQ(t.invalidateRange(0, 512), 4u);
    EXPECT_EQ(t.validCount(), 60u);
    EXPECT_EQ(t.invalidateAll(), 60u);
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TagArray, FromCapacityGeometry)
{
    TagArray t = TagArray::fromCapacity(3 * 1024 * 1024, 16, 128);
    EXPECT_EQ(t.numSets() * t.ways() * 128, 3u * 1024 * 1024);
    EXPECT_EQ(t.ways(), 16u);
}

TEST(TagArray, NonPowerOfTwoSets)
{
    // 3 MB / 128 B / 16 ways = 1536 sets — not a power of two; the
    // modulo indexing must still spread lines over all sets.
    TagArray t = TagArray::fromCapacity(3 * 1024 * 1024, 16, 128);
    for (std::uint64_t i = 0; i < t.numSets() * t.ways(); ++i)
        t.insert(i * 128);
    EXPECT_EQ(t.validCount(), t.numSets() * t.ways());
}

TEST(Cache, LoadHitMiss)
{
    Cache c(1024 * 128, 4, 128, /*write_allocate=*/true);
    EXPECT_FALSE(c.load(0x100).hit);
    c.fill(0x100, 42);
    auto r = c.load(0x100);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.version, 42u);
    EXPECT_EQ(c.loads(), 2u);
    EXPECT_EQ(c.loadHits(), 1u);
}

TEST(Cache, WriteAllocatePolicy)
{
    Cache wa(1024 * 128, 4, 128, true);
    EXPECT_TRUE(wa.store(0x100, 1));
    EXPECT_TRUE(wa.load(0x100).hit);

    Cache nwa(1024 * 128, 4, 128, false);
    EXPECT_FALSE(nwa.store(0x100, 1));
    EXPECT_FALSE(nwa.load(0x100).hit);
    // But stores update a present copy.
    nwa.fill(0x100, 1);
    EXPECT_TRUE(nwa.store(0x100, 2));
    EXPECT_EQ(nwa.load(0x100).version, 2u);
}

TEST(Cache, StoreVersionNeverRegresses)
{
    Cache c(1024 * 128, 4, 128, true);
    c.store(0x100, 10);
    c.store(0x100, 5);
    EXPECT_EQ(c.load(0x100).version, 10u);
    c.fill(0x100, 3);
    EXPECT_EQ(c.load(0x100).version, 10u);
}

TEST(Cache, InvalidateCounts)
{
    Cache c(1024 * 128, 4, 128, true);
    for (Addr a = 0; a < 16 * 128; a += 128)
        c.fill(a, 1);
    EXPECT_EQ(c.invalidateRange(0, 512), 4u);
    EXPECT_EQ(c.invalidateAll(), 12u);
    EXPECT_EQ(c.invalidatedLines(), 16u);
    EXPECT_EQ(c.bulkInvalidations(), 1u);
    EXPECT_FALSE(c.invalidateLine(0));
}

TEST(Cache, EvictionHookFires)
{
    // One set, two ways: the third distinct line evicts.
    Cache c(2 * 128, 2, 128, true);
    std::vector<Addr> evicted;
    c.setEvictionHook(
        [&](const CacheLine &l) { evicted.push_back(l.addr); });
    c.fill(0x0000, 1);
    c.fill(0x1000, 2); // same set (capacity 1 set)
    c.fill(0x2000, 3);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0x0000u);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, StatsReport)
{
    Cache c(1024 * 128, 4, 128, true);
    c.fill(0, 1);
    c.load(0);
    c.load(128);
    StatRecorder r;
    c.reportStats(r, "l2");
    EXPECT_DOUBLE_EQ(r.get("l2.loads"), 2);
    EXPECT_DOUBLE_EQ(r.get("l2.load_hits"), 1);
    EXPECT_DOUBLE_EQ(r.get("l2.fills"), 1);
}

} // namespace
} // namespace hmg
