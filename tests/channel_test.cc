/**
 * @file
 * Unit tests for the bandwidth-serialized FIFO channel — the building
 * block every bandwidth-limited resource (crossbar ports, NVLink ports,
 * DRAM channels) is modeled with.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/engine.hh"

namespace hmg
{
namespace
{

TEST(Channel, LatencyOnly)
{
    Engine e;
    Channel ch(e, /*bytes_per_cycle=*/128.0, /*latency=*/100);
    Tick arrival = ch.send(128);
    // 1 cycle serialization + 100 latency.
    EXPECT_EQ(arrival, 101u);
}

TEST(Channel, SerializationAccumulates)
{
    Engine e;
    Channel ch(e, 64.0, 0);
    // Three 128-byte messages at 64 B/cyc: each occupies 2 cycles.
    EXPECT_EQ(ch.send(128), 2u);
    EXPECT_EQ(ch.send(128), 4u);
    EXPECT_EQ(ch.send(128), 6u);
    EXPECT_EQ(ch.bytesSent(), 384u);
    EXPECT_EQ(ch.messagesSent(), 3u);
}

TEST(Channel, FractionalBandwidth)
{
    Engine e;
    Channel ch(e, 1.5, 0);
    // 3 bytes at 1.5 B/cyc = 2 cycles each, exact accumulation.
    EXPECT_EQ(ch.send(3), 2u);
    EXPECT_EQ(ch.send(3), 4u);
    EXPECT_EQ(ch.send(3), 6u);
}

TEST(Channel, IdleGapResets)
{
    Engine e;
    Channel ch(e, 128.0, 10);
    EXPECT_EQ(ch.send(128), 11u);
    // Advance simulated time past the busy period.
    e.schedule(100, []() {});
    e.run();
    EXPECT_EQ(e.now(), 100u);
    EXPECT_EQ(ch.send(128), 111u);
}

TEST(Channel, FifoDeliveryOrder)
{
    Engine e;
    Channel ch(e, 16.0, 50);
    std::vector<int> order;
    ch.send(128, [&]() { order.push_back(1); });
    ch.send(16, [&]() { order.push_back(2); });
    ch.send(16, [&]() { order.push_back(3); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, ArrivalsMonotonic)
{
    Engine e;
    Channel ch(e, 3.7, 13);
    Tick prev = 0;
    for (int i = 0; i < 200; ++i) {
        Tick a = ch.send(1 + i % 7);
        EXPECT_GE(a, prev);
        prev = a;
    }
}

TEST(Channel, SendAtChainsFutureTime)
{
    Engine e;
    Channel ch(e, 128.0, 10);
    Tick a = ch.sendAt(1000, 128);
    EXPECT_EQ(a, 1011u);
    // A later message queued behind the first.
    Tick b = ch.sendAt(1000, 128);
    EXPECT_EQ(b, 1012u);
}

TEST(Channel, BusyUntilTracksOccupancy)
{
    Engine e;
    Channel ch(e, 1.0, 0);
    ch.send(10);
    EXPECT_EQ(ch.busyUntil(), 10u);
    ch.send(5);
    EXPECT_EQ(ch.busyUntil(), 15u);
}

TEST(Channel, CallbackSeesArrivalTime)
{
    Engine e;
    Channel ch(e, 128.0, 42);
    Tick seen = 0;
    ch.send(128, [&]() { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 43u);
}

// Occupancy accounting is exact integer arithmetic: 10M back-to-back
// sends on a fractional-bandwidth channel land on the closed-form tick
// with zero drift (the seed's double accumulator drifted here).
TEST(Channel, TenMillionSendsExactNoDrift)
{
    Engine e;
    Channel ch(e, 1.5, 0);
    constexpr std::uint64_t kSends = 10'000'000;
    for (std::uint64_t i = 0; i < kSends; ++i) {
        // 3 bytes at 1.5 B/cyc = exactly 2 cycles each, forever.
        const Tick a = ch.send(3);
        ASSERT_EQ(a, 2 * (i + 1)) << "drift after " << i << " sends";
    }
    EXPECT_EQ(ch.busyUntil(), 2 * kSends);
}

// n sends of B bytes must occupy exactly as long as one send of n*B
// bytes — an accumulator-drift detector that needs no knowledge of the
// channel's internal bandwidth representation.
TEST(Channel, ManySmallSendsEqualOneBigSend)
{
    constexpr std::uint64_t kSends = 10'000'000;
    constexpr std::uint32_t kBytes = 128;
    Engine e;
    // Non-dyadic bandwidth (the Table II inter-GPU port figure) so the
    // per-send occupancy has an awkward fractional part.
    Channel many(e, 153.6, 0);
    Channel one(e, 153.6, 0);
    Tick prev = 0;
    for (std::uint64_t i = 0; i < kSends; ++i) {
        const Tick a = many.send(kBytes);
        ASSERT_GE(a, prev) << "arrival regressed at send " << i;
        prev = a;
    }
    one.send(kSends * kBytes);
    EXPECT_EQ(many.busyUntil(), one.busyUntil());
}

} // namespace
} // namespace hmg
