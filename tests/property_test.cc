/**
 * @file
 * Property-based tests: randomized traces and randomized message-
 * passing placements checked against the memory-model oracle and
 * structural invariants, parameterized over protocols and seeds.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hh"
#include "gpu/simulator.hh"
#include "test_system.hh"
#include "trace/trace.hh"

namespace hmg
{
namespace
{

using testing::DirectDrive;
using trace::Cta;
using trace::Kernel;
using trace::Trace;
using trace::Warp;

/** Random trace over a small footprint with mixed op types/scopes. */
Trace
randomTrace(std::uint64_t seed, std::uint64_t ctas, std::uint64_t warps,
            std::uint64_t ops)
{
    Rng rng(seed);
    Trace t;
    t.name = "random";
    const std::uint64_t kernels = 2 + rng.below(3);
    const std::uint64_t lines = 512;
    for (std::uint64_t k = 0; k < kernels; ++k) {
        Kernel ker;
        ker.ctas.resize(ctas);
        for (auto &cta : ker.ctas) {
            cta.warps.resize(warps);
            for (auto &w : cta.warps) {
                for (std::uint64_t i = 0; i < ops; ++i) {
                    Addr a = rng.below(lines) * 128;
                    auto delay =
                        static_cast<std::uint32_t>(rng.below(4));
                    switch (rng.below(10)) {
                      case 0:
                        w.st(a, delay);
                        break;
                      case 1:
                        w.atom(a, rng.chance(0.5) ? Scope::Gpu
                                                  : Scope::Sys,
                               delay);
                        break;
                      case 2:
                        w.relFence(rng.chance(0.5) ? Scope::Gpu
                                                   : Scope::Sys,
                                   delay);
                        break;
                      case 3:
                        w.acqFence(rng.chance(0.5) ? Scope::Gpu
                                                   : Scope::Sys,
                                   delay);
                        break;
                      case 4:
                        w.ld(a, delay,
                             rng.chance(0.5) ? Scope::Gpu : Scope::Sys,
                             /*acquire=*/true);
                        break;
                      default:
                        w.ld(a, delay);
                        break;
                    }
                }
            }
        }
        t.kernels.push_back(std::move(ker));
    }
    return t;
}

struct Param
{
    Protocol protocol;
    std::uint64_t seed;
};

class RandomTraceTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(RandomTraceTest, CompletesWithInvariantsIntact)
{
    auto [protocol, seed] = GetParam();
    SystemConfig cfg = testing::smallConfig(protocol);
    Trace t = randomTrace(seed, /*ctas=*/8, /*warps=*/2, /*ops=*/30);
    Simulator sim(cfg);
    auto res = sim.run(t);

    // Completion and conservation.
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.ops"),
                     static_cast<double>(t.memOps()));
    EXPECT_EQ(sim.system().tracker().totalPendingSys(), 0u);

    // After quiescence, for coherent protocols every cached copy of a
    // line is exactly the authoritative version (write-through + fully
    // delivered invalidations mean no stale copies can outlive a run's
    // final drain *at the home*; non-home copies may legitimately be
    // stale only if an invalidation was never required — i.e. the line
    // was never shared-written — so we check home L2s only).
    auto &sys = sim.system();
    for (GpmId g = 0; g < cfg.totalGpms(); ++g) {
        sys.gpm(g).l2().tags().forEachValid([&](const CacheLine &line) {
            if (sys.pageTable().isPlaced(line.addr) &&
                sys.pageTable().homeOf(line.addr) == g) {
                EXPECT_EQ(line.version, sys.memory().read(line.addr))
                    << "home L2 copy diverged from memory";
            }
        });
    }
}

TEST_P(RandomTraceTest, DirectorySharersCoverCachedCopies)
{
    auto [protocol, seed] = GetParam();
    if (!isHardwareProtocol(protocol))
        GTEST_SKIP() << "directory protocols only";
    SystemConfig cfg = testing::smallConfig(protocol);
    Trace t = randomTrace(seed ^ 0xabcd, 8, 2, 30);
    Simulator sim(cfg);
    sim.run(t);

    // Structural invariant: any non-home L2 holding a line must be
    // covered by home directory state — either directly (flat / same
    // GPU) or via its GPU's sharer bit (HMG). Otherwise a future store
    // could never invalidate it.
    auto &sys = sim.system();
    const bool hier = protocol == Protocol::Hmg;
    for (GpmId g = 0; g < cfg.totalGpms(); ++g) {
        sys.gpm(g).l2().tags().forEachValid([&](const CacheLine &line) {
            const GpmId home = sys.pageTable().homeOf(line.addr);
            if (home == g)
                return;
            if (hier) {
                const GpmId gh =
                    sys.addressMap().gpuHome(cfg.gpuOf(g), line.addr);
                if (gh == g) {
                    // A GPU home is covered at the system home.
                    const DirEntry *e = sys.gpm(home).dir()->find(
                        line.addr);
                    ASSERT_NE(e, nullptr) << "untracked GPU-home copy";
                    EXPECT_TRUE(e->hasGpu(cfg.gpuOf(g)));
                } else {
                    const DirEntry *e =
                        sys.gpm(gh).dir()->find(line.addr);
                    ASSERT_NE(e, nullptr) << "untracked GPM copy";
                    EXPECT_TRUE(e->hasGpm(cfg.localGpmOf(g)));
                }
            } else {
                const DirEntry *e = sys.gpm(home).dir()->find(line.addr);
                ASSERT_NE(e, nullptr) << "untracked copy";
                EXPECT_TRUE(e->hasGpm(g));
            }
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraceTest, ::testing::ValuesIn([] {
        std::vector<Param> params;
        for (Protocol p :
             {Protocol::NoRemoteCache, Protocol::SwNonHier,
              Protocol::SwHier, Protocol::Nhcc, Protocol::Hmg,
              Protocol::Ideal})
            for (std::uint64_t seed : {1ull, 2ull, 3ull})
                params.push_back({p, seed});
        return params;
    }()),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string n = toString(info.param.protocol);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_s" + std::to_string(info.param.seed);
    });

/** Randomized message-passing placements at the protocol layer. */
class RandomMpTest : public ::testing::TestWithParam<Protocol>
{
};

TEST_P(RandomMpTest, MessagePassingHoldsForRandomPlacements)
{
    Rng rng(99);
    for (int trial = 0; trial < 15; ++trial) {
        DirectDrive d(GetParam());
        const Addr data = 0x000000;
        const Addr flag = 0x200000;
        d.place(data, static_cast<GpmId>(rng.below(4)));
        d.place(flag, static_cast<GpmId>(rng.below(4)));
        const SmId writer = static_cast<SmId>(rng.below(8));
        SmId reader = static_cast<SmId>(rng.below(8));

        // Pick the narrowest sufficient scope for the pair.
        const bool same_gpu =
            d.cfg().gpuOf(d.gpmOf(writer)) == d.cfg().gpuOf(d.gpmOf(reader));
        const Scope scope =
            same_gpu && rng.chance(0.5) ? Scope::Gpu : Scope::Sys;

        d.load(reader, data); // seed (possibly) stale copy
        Version v1 = d.store(writer, data);
        d.release(writer, scope);
        Version v2 = d.store(writer, flag);

        Version seen = 0;
        int spins = 0;
        while (seen < v2) {
            seen = d.load(reader, flag, scope);
            ASSERT_LT(++spins, 100);
        }
        d.acquire(reader, scope);
        EXPECT_GE(d.load(reader, data), v1)
            << "trial " << trial << " writer=" << writer
            << " reader=" << reader << " scope=" << toString(scope);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCoherent, RandomMpTest,
    ::testing::Values(Protocol::NoRemoteCache, Protocol::SwNonHier,
                      Protocol::SwHier, Protocol::Nhcc, Protocol::Hmg),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        std::string n = toString(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace hmg
