/**
 * @file
 * Unit tests for src/mem: NUMA page placement, home-node mapping, the
 * versioned memory oracle, and the DRAM channel.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/memory_state.hh"
#include "mem/page_table.hh"
#include "sim/engine.hh"

namespace hmg
{
namespace
{

constexpr Addr kPage = 2ull * 1024 * 1024;

TEST(PageTable, FirstTouchSticks)
{
    SystemConfig cfg;
    PageTable pt(cfg);
    EXPECT_EQ(pt.touch(0x1000, 5), 5u);
    // Subsequent touches by other GPMs do not move the page.
    EXPECT_EQ(pt.touch(0x2000, 9), 5u);
    EXPECT_EQ(pt.homeOf(0x1fff80), 5u);
    // A different page places independently.
    EXPECT_EQ(pt.touch(kPage, 9), 9u);
    EXPECT_EQ(pt.pageCount(), 2u);
}

TEST(PageTable, RoundRobinPolicy)
{
    SystemConfig cfg;
    cfg.pagePlacement = PagePlacement::RoundRobin;
    PageTable pt(cfg);
    for (std::uint64_t p = 0; p < 32; ++p)
        EXPECT_EQ(pt.touch(p * kPage, 3), p % cfg.totalGpms());
}

TEST(PageTable, LocalOnlyPolicy)
{
    SystemConfig cfg;
    cfg.pagePlacement = PagePlacement::LocalOnly;
    PageTable pt(cfg);
    EXPECT_EQ(pt.touch(5 * kPage, 7), 0u);
}

TEST(PageTable, IsPlacedAndCounts)
{
    SystemConfig cfg;
    PageTable pt(cfg);
    EXPECT_FALSE(pt.isPlaced(0));
    pt.touch(0, 2);
    pt.touch(kPage, 2);
    pt.touch(2 * kPage, 3);
    EXPECT_TRUE(pt.isPlaced(100));
    EXPECT_EQ(pt.pagesOn(2), 2u);
    EXPECT_EQ(pt.pagesOn(3), 1u);
    EXPECT_EQ(pt.pagesOn(4), 0u);
}

TEST(PageTableDeath, UnplacedPagePanics)
{
    SystemConfig cfg;
    PageTable pt(cfg);
    EXPECT_DEATH(pt.homeOf(0x123), "unplaced");
}

TEST(AddressMap, Granularities)
{
    SystemConfig cfg;
    PageTable pt(cfg);
    AddressMap am(cfg, pt);
    EXPECT_EQ(am.lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(am.sectorAddr(0x1234), 0x1200u & ~0x1ffull);
    EXPECT_EQ(am.sectorBytes(), 512u);
    EXPECT_EQ(am.linesPerSector(), 4u);
    EXPECT_EQ(am.pageAddr(kPage + 5), kPage);
    EXPECT_EQ(am.lineNumber(256), 2u);
}

TEST(AddressMap, SystemAndGpuHomes)
{
    SystemConfig cfg;
    PageTable pt(cfg);
    AddressMap am(cfg, pt);
    // Home the page on GPM 6 (GPU 1, local index 2).
    pt.touch(0, 6);
    EXPECT_EQ(am.systemHome(0x40), 6u);
    EXPECT_EQ(am.systemHomeGpu(0x40), 1u);
    // Each GPU's home shares the system home's local index.
    EXPECT_EQ(am.gpuHome(0, 0x40), 2u);
    EXPECT_EQ(am.gpuHome(1, 0x40), 6u);
    EXPECT_EQ(am.gpuHome(2, 0x40), 10u);
    EXPECT_EQ(am.gpuHome(3, 0x40), 14u);
}

TEST(MemoryState, SerializedWritesOrderByArrival)
{
    MemoryState m;
    EXPECT_EQ(m.read(0x100), 0u);
    Version v1 = m.allocateVersion();
    Version v2 = m.allocateVersion();
    EXPECT_LT(v1, v2);
    m.write(0x100, v2);
    // Arrival order at the home is the coherence order: a write-through
    // landing later wins even with a numerically smaller version id
    // (two L2s racing to the home may land out of issue order).
    m.write(0x100, v1);
    EXPECT_EQ(m.read(0x100), v1);
    EXPECT_EQ(m.linesWritten(), 1u);
}

TEST(MemoryState, WriteBackFlushNeverClobbersNewerData)
{
    MemoryState m;
    Version v1 = m.allocateVersion();
    Version v2 = m.allocateVersion();
    m.write(0x100, v2);
    // A flushed dirty victim was ordered by its original local store,
    // not by the flush's arrival: it must not roll memory back.
    m.write(0x100, v1, /*serialized=*/false);
    EXPECT_EQ(m.read(0x100), v2);
    // But it does install when memory is genuinely older.
    m.write(0x200, v1, /*serialized=*/false);
    EXPECT_EQ(m.read(0x200), v1);
}

TEST(Dram, BandwidthAndLatency)
{
    SystemConfig cfg;
    Engine e;
    Dram d(e, cfg);
    // ~192 B/cyc, 350 cycle latency: one line takes 350 + ceil(128/192).
    Tick t1 = d.read(128);
    EXPECT_EQ(t1, 351u);
    // Back-to-back lines serialize on the channel.
    Tick t2 = d.read(128);
    EXPECT_GT(t2, t1);
    EXPECT_EQ(d.reads(), 2u);
    d.write(128);
    EXPECT_EQ(d.writes(), 1u);
    EXPECT_EQ(d.bytesTransferred(), 384u);
}

TEST(Dram, SaturatesAtConfiguredBandwidth)
{
    SystemConfig cfg;
    Engine e;
    Dram d(e, cfg);
    const int n = 10000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = d.read(128);
    // 10k lines x 128 B at ~192 B/cyc ~= 6.66k cycles + latency.
    double expect = n * 128.0 / cfg.dramPortBytesPerCycle() +
                    static_cast<double>(cfg.dramLatency);
    EXPECT_NEAR(static_cast<double>(last), expect, expect * 0.01);
}

} // namespace
} // namespace hmg
