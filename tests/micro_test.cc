/**
 * @file
 * Tests for the Fig. 7 microbenchmarks and their analytical oracle:
 * trace shapes, prediction monotonicity, and — most importantly — that
 * the full simulator actually lands near the closed-form bounds on the
 * bandwidth- and latency-dominated extremes.
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "trace/micro.hh"

namespace hmg
{
namespace
{

namespace micro = trace::micro;

TEST(Micro, TraceShapes)
{
    auto s = micro::localStream(8, 64);
    EXPECT_EQ(s.kernels.size(), 2u);
    EXPECT_EQ(s.kernels[1].ctas.size(), 64u);

    auto chase = micro::pointerChase(100);
    EXPECT_EQ(chase.kernels[1].ctas.size(), 1u);
    // One load plus one serializing fence per chased element.
    EXPECT_EQ(chase.kernels[1].ctas[0].warps[0].ops.size(), 200u);
}

TEST(Micro, PredictionsScaleWithSize)
{
    SystemConfig cfg;
    EXPECT_LT(micro::predictLocalStream(cfg, 8, 512),
              micro::predictLocalStream(cfg, 64, 512));
    EXPECT_LT(micro::predictRemoteStream(cfg, 4, 512),
              micro::predictRemoteStream(cfg, 32, 512));
    EXPECT_NEAR(micro::predictPointerChase(cfg, 800) /
                    micro::predictPointerChase(cfg, 400),
                2.0, 0.01);
}

TEST(Micro, CorrelationSuiteIsPopulated)
{
    SystemConfig cfg;
    auto suite = micro::correlationSuite(cfg);
    EXPECT_EQ(suite.size(), 12u);
    for (const auto &m : suite) {
        EXPECT_GT(m.predictedCycles, 0.0);
        EXPECT_GT(m.trace.memOps(), 0u);
    }
}

TEST(Micro, PointerChaseMatchesLatencyModel)
{
    // The serialized chase is pure latency: the simulator must land
    // close to the closed-form per-load round trip.
    SystemConfig cfg;
    cfg.protocol = Protocol::NoRemoteCache;
    auto t = micro::pointerChase(400);
    Simulator sim(cfg);
    auto res = sim.run(t);
    const double predicted = micro::predictPointerChase(cfg, 400);
    EXPECT_NEAR(static_cast<double>(res.cycles), predicted,
                0.15 * predicted);
}

TEST(Micro, LocalStreamApproachesDramBandwidth)
{
    SystemConfig cfg;
    cfg.protocol = Protocol::NoRemoteCache;
    auto t = micro::localStream(64, 512);
    Simulator sim(cfg);
    auto res = sim.run(t);
    const double predicted = micro::predictLocalStream(cfg, 64, 512);
    // Bandwidth-bound: near the roofline (fixed launch overheads and
    // overlap effects put the ratio within a modest band).
    EXPECT_GE(static_cast<double>(res.cycles), 0.7 * predicted);
    EXPECT_LE(static_cast<double>(res.cycles), 1.5 * predicted);
}

TEST(Micro, RemoteStreamBoundByInterGpuLink)
{
    SystemConfig cfg;
    cfg.protocol = Protocol::NoRemoteCache;
    auto t = micro::remoteStream(32, 512);
    Simulator sim(cfg);
    auto res = sim.run(t);
    const double predicted = micro::predictRemoteStream(cfg, 32, 512);
    EXPECT_GE(static_cast<double>(res.cycles), 0.8 * predicted);
    EXPECT_LE(static_cast<double>(res.cycles), 1.5 * predicted);
}

TEST(Micro, RemoteStreamSlowerThanLocal)
{
    SystemConfig cfg;
    cfg.protocol = Protocol::NoRemoteCache;
    Simulator a(cfg), b(cfg);
    Tick local = a.run(micro::localStream(16, 512)).cycles;
    Tick remote = b.run(micro::remoteStream(16, 512)).cycles;
    // Same volume; the remote variant funnels through one GPU's links.
    EXPECT_GT(remote, local);
}

} // namespace
} // namespace hmg
