/**
 * @file
 * Tests for the src/verify/ subsystem: the declarative transition
 * tables the timing simulator dispatches through, the static table /
 * message-graph checks (invariant family 1), and the exhaustive model
 * checker behind tools/hmgcheck (families 2-4).
 */

#include <gtest/gtest.h>

#include "verify/model.hh"
#include "verify/spec.hh"

namespace hmg::verify
{
namespace
{

// ------------------------------------------------------------------
// Family 1: static table properties.
// ------------------------------------------------------------------

TEST(VerifyTables, AllTablesAckFreeTransientFreeComplete)
{
    std::size_t count = 0;
    const TransitionTable *tables = allTables(count);
    ASSERT_EQ(count, 4u); // NHCC flat + HMG sys/node/GPU home tiers
    for (std::size_t i = 0; i < count; ++i) {
        auto problems = checkTable(tables[i]);
        for (const auto &p : problems)
            ADD_FAILURE() << tables[i].name << ": " << p;
        EXPECT_GT(tables[i].numRows, 0u);
    }
}

TEST(VerifyTables, MessageClassGraphAcyclic)
{
    auto problems = checkMsgClassGraph();
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

TEST(VerifyTables, FindTransitionMatchesGuards)
{
    const TransitionTable &t = tableFor(Role::SysHome);
    // The home-store row splits on whether the writer is tracked; both
    // variants must resolve, to different rows.
    const Transition *tracked =
        findTransition(t, DirState::Valid, DirEvent::Store, true);
    const Transition *untracked =
        findTransition(t, DirState::Valid, DirEvent::Store, false);
    ASSERT_NE(tracked, nullptr);
    ASSERT_NE(untracked, nullptr);
    EXPECT_NE(tracked, untracked);
    // Core paper claims, restated as direct row checks: no row needs an
    // acknowledgment or a transient next state.
    EXPECT_FALSE(tracked->needsAck);
    EXPECT_FALSE(untracked->needsAck);
    EXPECT_FALSE(tracked->transientNext);
}

// ------------------------------------------------------------------
// Families 2-4: exhaustive exploration.
// ------------------------------------------------------------------

MckConfig
cfgFor(bool hier, Workload w)
{
    MckConfig cfg;
    cfg.hier = hier;
    cfg.workload = w;
    return cfg;
}

TEST(VerifyModel, FreeExplorationNhcc)
{
    MckResult r = exploreProtocol(cfgFor(false, Workload::Free));
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.statesExplored, 1000u);
    EXPECT_GT(r.finalStates, 0u);
}

TEST(VerifyModel, FreeExplorationHmg)
{
    MckResult r = exploreProtocol(cfgFor(true, Workload::Free));
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.statesExplored, 1000u);
    EXPECT_GT(r.finalStates, 0u);
}

TEST(VerifyModel, LitmusSuitePassesBothProtocols)
{
    for (bool hier : {false, true})
        for (Workload w : {Workload::MpSys, Workload::SbSys,
                           Workload::WrcSys}) {
            MckResult r = exploreProtocol(cfgFor(hier, w));
            EXPECT_TRUE(r.ok) << (hier ? "hmg " : "nhcc ") << toString(w)
                              << ": " << r.violation;
            EXPECT_GT(r.finalStates, 0u);
        }
}

TEST(VerifyModel, GpuScopedMessagePassingHoldsUnderHmg)
{
    MckResult r = exploreProtocol(cfgFor(true, Workload::MpGpu));
    EXPECT_TRUE(r.ok) << r.violation;
}

TEST(VerifyModel, MisScopedMessagePassingIsCaught)
{
    // Deliberately wrong program: .gpu-scoped rel/acq synchronizing
    // across GPUs. The forbidden outcome must be reachable, and the
    // checker must return a non-empty counterexample trace for it.
    MckResult r = exploreProtocol(cfgFor(true, Workload::MpGpuCross));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("scoped-RC"), std::string::npos)
        << r.violation;
    EXPECT_FALSE(r.trace.empty());
}

TEST(VerifyModel, SeededBadTableRowProducesCounterexample)
{
    // The acceptance-criterion hook: corrupt the home store row so it
    // emits no invalidations; exploration must find a violation and
    // reconstruct a minimal trace to it.
    for (bool hier : {false, true}) {
        MckConfig cfg = cfgFor(hier, Workload::MpSys);
        cfg.seedBadRow = true;
        MckResult r = exploreProtocol(cfg);
        EXPECT_FALSE(r.ok) << (hier ? "hmg" : "nhcc")
                           << ": bad row not detected";
        EXPECT_FALSE(r.violation.empty());
        EXPECT_FALSE(r.trace.empty());
        // The trace is minimal (BFS): replaying fewer steps cannot
        // reach a violation, so it should be short on this workload.
        EXPECT_LE(r.trace.size(), 12u);
    }
}

TEST(VerifyModel, DirectoryCapacityPressureStillSound)
{
    // dirEntriesPerNode=1 (the default) forces Replace fans; a roomier
    // directory must also pass and visit a different state count.
    MckConfig a = cfgFor(true, Workload::Free);
    MckConfig b = a;
    b.dirEntriesPerNode = 2;
    MckResult ra = exploreProtocol(a);
    MckResult rb = exploreProtocol(b);
    EXPECT_TRUE(ra.ok) << ra.violation;
    EXPECT_TRUE(rb.ok) << rb.violation;
    EXPECT_NE(ra.statesExplored, rb.statesExplored);
}

} // namespace
} // namespace hmg::verify
