/**
 * @file
 * Tests of the retry-sublayer model checker (src/verify/retry_model.*).
 *
 * The clean go-back-N instance must verify — delivery liveness and
 * exactly-once in-order delivery over lossy channels — and the seeded
 * bug (receiver accepts any sequence number) must be *caught*, proving
 * the checker can actually distinguish a broken ARQ from a sound one.
 */

#include <gtest/gtest.h>

#include "verify/retry_model.hh"

namespace hmg::verify
{
namespace
{

TEST(RetryModel, DefaultInstanceVerifies)
{
    const RetryMckResult res = exploreRetry(RetryMckConfig{});
    EXPECT_TRUE(res.ok) << res.violation;
    EXPECT_GT(res.statesExplored, 0u);
    EXPECT_GT(res.transitionsTaken, res.statesExplored);
    // Liveness is meaningful only if quiescent states are reachable.
    EXPECT_GT(res.finalStates, 0u);
    EXPECT_TRUE(res.violation.empty());
}

TEST(RetryModel, LargerInstanceVerifies)
{
    RetryMckConfig cfg;
    cfg.numMsgs = 4;
    cfg.window = 3;
    cfg.lossBudget = 4;
    const RetryMckResult res = exploreRetry(cfg);
    EXPECT_TRUE(res.ok) << res.violation;
    EXPECT_GT(res.finalStates, 0u);
    // Sanity: the bigger instance explores strictly more states.
    const RetryMckResult small = exploreRetry(RetryMckConfig{});
    EXPECT_GT(res.statesExplored, small.statesExplored);
}

TEST(RetryModel, LosslessInstanceVerifies)
{
    RetryMckConfig cfg;
    cfg.lossBudget = 0; // no losses: plain windowed FIFO delivery
    const RetryMckResult res = exploreRetry(cfg);
    EXPECT_TRUE(res.ok) << res.violation;
    EXPECT_GT(res.finalStates, 0u);
}

TEST(RetryModel, SeededBugIsCaughtWithTrace)
{
    RetryMckConfig cfg;
    cfg.seedAcceptAnySeq = true;
    const RetryMckResult res = exploreRetry(cfg);
    ASSERT_FALSE(res.ok);
    // Without the in-order filter a retransmission is either
    // re-delivered (duplicate) or delivered ahead of a lost
    // predecessor (out-of-order); the checker names whichever it
    // reaches first and hands back an actionable action path.
    EXPECT_TRUE(res.violation.find("duplicate") != std::string::npos ||
                res.violation.find("out-of-order") != std::string::npos)
        << res.violation;
    EXPECT_FALSE(res.trace.empty());
}

TEST(RetryModel, DeterministicAcrossRuns)
{
    const RetryMckResult a = exploreRetry(RetryMckConfig{});
    const RetryMckResult b = exploreRetry(RetryMckConfig{});
    EXPECT_EQ(a.statesExplored, b.statesExplored);
    EXPECT_EQ(a.transitionsTaken, b.transitionsTaken);
    EXPECT_EQ(a.finalStates, b.finalStates);
}

} // namespace
} // namespace hmg::verify
