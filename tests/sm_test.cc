/**
 * @file
 * SM front-end tests: warp execution order, L1 behaviour (hit/miss,
 * scoped-load bypass, acquire invalidation), store-buffer forwarding,
 * and MSHR throttling — driven through the real scheduler with
 * hand-built single-kernel traces.
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "test_system.hh"
#include "trace/trace.hh"

namespace hmg
{
namespace
{

using trace::Cta;
using trace::Kernel;
using trace::Trace;
using trace::Warp;

Trace
oneCtaTrace(Warp warp)
{
    Trace t;
    t.name = "test";
    Kernel k;
    k.name = "k";
    Cta cta;
    cta.warps.push_back(std::move(warp));
    k.ctas.push_back(std::move(cta));
    t.kernels.push_back(std::move(k));
    return t;
}

SimResult
runTrace(Protocol p, const Trace &t)
{
    Simulator sim(testing::smallConfig(p));
    return sim.run(t);
}

TEST(Sm, ExecutesAllOps)
{
    Warp w;
    for (int i = 0; i < 20; ++i)
        w.ld(i * 128, 2);
    for (int i = 0; i < 10; ++i)
        w.st(i * 128, 2);
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.ops"), 30);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.loads"), 20);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.stores"), 10);
    EXPECT_GT(res.cycles, 0u);
}

TEST(Sm, L1CapturesReuse)
{
    // Loads are posted (non-blocking), so a draining .cta fence between
    // repetitions guarantees the fills have landed before the re-reads.
    Warp w;
    for (int rep = 0; rep < 8; ++rep) {
        for (int i = 0; i < 4; ++i)
            w.ld(i * 128, 1);
        w.acqFence(Scope::Cta, 1);
    }
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    // 4 cold misses, 28 L1 hits.
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.l1.loads"), 32);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.l1.load_hits"), 28);
}

TEST(Sm, ScopedLoadsMissTheL1)
{
    Warp w;
    w.ld(0, 1);                // cold miss, fills L1
    w.acqFence(Scope::Cta, 1); // drain so the fill lands
    w.ld(0, 1);                // L1 hit
    w.ld(0, 1, Scope::Gpu);    // must bypass the L1
    w.ld(0, 1, Scope::Sys);    // must bypass the L1
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    // Only the None-scoped loads consult the L1.
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.l1.loads"), 2);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.l1.load_hits"), 1);
}

TEST(Sm, StoreBufferForwardsOwnWrite)
{
    // A load immediately after the warp's own store must see it even
    // though the write-through is still in flight.
    Warp w;
    w.ld(0, 1);  // seed the line
    w.st(0, 1);
    w.ld(0, 0);  // zero delay: the write-through cannot have finished
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    EXPECT_GE(res.stats.get("sm_total.sb_forwards") +
                  res.stats.get("sm_total.l1.load_hits"),
              1.0);
}

TEST(Sm, AcquireInvalidatesL1)
{
    Warp w;
    w.ld(0, 1);              // fill L1
    w.acqFence(Scope::Gpu, 1);
    w.ld(0, 1);              // must miss the (now empty) L1
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.l1.load_hits"), 0);
    EXPECT_GE(res.stats.get("sm_total.l1.bulk_invalidations"), 1.0);
}

TEST(Sm, AtomicsBlockAndComplete)
{
    Warp w;
    for (int i = 0; i < 8; ++i)
        w.atom(i * 128, Scope::Gpu, 2);
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.atomics"), 8);
}

TEST(Sm, ManyOutstandingLoadsComplete)
{
    // More loads than the MSHR budget: the throttle must queue and
    // drain, not deadlock or drop.
    SystemConfig cfg = testing::smallConfig(Protocol::Hmg);
    cfg.smMaxOutstanding = 4;
    Trace t;
    Kernel k;
    Cta cta;
    for (int wi = 0; wi < 4; ++wi) {
        Warp w;
        for (int i = 0; i < 64; ++i)
            w.ld((wi * 64 + i) * 128, 0);
        cta.warps.push_back(std::move(w));
    }
    k.ctas.push_back(std::move(cta));
    t.kernels.push_back(std::move(k));
    Simulator sim(cfg);
    auto res = sim.run(t);
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.loads"), 256);
}

TEST(Sm, ReleaseStoreOrdersAfterPriorWrites)
{
    // st data; st.release flag — by trace completion everything must
    // have drained; this exercises the release path through the SM.
    Warp w;
    w.st(0, 1);
    w.st(0x200000, 1, Scope::Sys, /*release=*/true);
    auto res = runTrace(Protocol::Hmg, oneCtaTrace(std::move(w)));
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.stores"), 2);
    EXPECT_GE(res.stats.get("protocol.releases"), 1.0);
}

TEST(Sm, LatencyHidingAcrossWarps)
{
    // 8 warps of independent loads should take far less than 8x one
    // warp's serial time.
    auto serial = [&](int warps) {
        Trace t;
        Kernel k;
        Cta cta;
        for (int wi = 0; wi < warps; ++wi) {
            Warp w;
            for (int i = 0; i < 32; ++i)
                w.ld((wi * 32 + i) * 128, 0);
            cta.warps.push_back(std::move(w));
        }
        k.ctas.push_back(std::move(cta));
        t.kernels.push_back(std::move(k));
        Simulator sim(testing::smallConfig(Protocol::Hmg));
        return sim.run(t).cycles;
    };
    Tick one = serial(1);
    Tick eight = serial(8);
    EXPECT_LT(eight, 3 * one);
}

} // namespace
} // namespace hmg
