/**
 * @file
 * Full-system integration tests: real workload traces through the full
 * simulator under every protocol, checking completion, conservation
 * invariants, and coarse performance-ordering sanity (caching beats no
 * caching; the incoherent ideal is an upper bound).
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "trace/workloads.hh"

namespace hmg
{
namespace
{

namespace wl = trace::workloads;

constexpr Protocol kAll[] = {Protocol::NoRemoteCache, Protocol::SwNonHier,
                             Protocol::SwHier, Protocol::Nhcc,
                             Protocol::Hmg, Protocol::Ideal};

class ProtocolIntegration : public ::testing::TestWithParam<Protocol>
{
};

TEST_P(ProtocolIntegration, RunsRealWorkloadOnFullMachine)
{
    SystemConfig cfg; // full Table II machine
    cfg.protocol = GetParam();
    auto t = wl::make("RNN_FW", 0.1);
    Simulator sim(cfg);
    auto res = sim.run(t);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_EQ(res.memOps, t.memOps());
    // Every trace op executed exactly once across all SMs.
    EXPECT_DOUBLE_EQ(res.stats.get("sm_total.ops"),
                     static_cast<double>(t.memOps()));
}

TEST_P(ProtocolIntegration, VersionCounterMatchesWriteCount)
{
    SystemConfig cfg;
    cfg.protocol = GetParam();
    auto t = wl::make("bfs", 0.05);
    Simulator sim(cfg);
    auto res = sim.run(t);
    // One version is allocated per store and per atomic.
    EXPECT_EQ(static_cast<double>(sim.system().memory().latestVersion()),
              res.stats.get("sm_total.stores") +
                  res.stats.get("sm_total.atomics"));
    // Everything drained by the end.
    EXPECT_EQ(sim.system().tracker().totalPendingSys(), 0u);
}

TEST_P(ProtocolIntegration, CacheStatConservation)
{
    SystemConfig cfg;
    cfg.protocol = GetParam();
    auto t = wl::make("comd", 0.05);
    Simulator sim(cfg);
    auto res = sim.run(t);
    // L2 hits never exceed lookups.
    EXPECT_LE(res.stats.get("total.l2.load_hits"),
              res.stats.get("total.l2.loads"));
    EXPECT_LE(res.stats.get("sm_total.l1.load_hits"),
              res.stats.get("sm_total.l1.loads"));
}

TEST_P(ProtocolIntegration, RealWorkloadUnderCoherenceChecker)
{
    if (GetParam() == Protocol::Ideal)
        GTEST_SKIP() << "the idealized model is deliberately incoherent";
    // A reduced machine so the checker's per-access verification stays
    // cheap; every load/store/fence of a real trace is validated
    // against the version oracle (the `--check` path of hmgsim).
    SystemConfig cfg;
    cfg.numGpus = 2;
    cfg.gpmsPerGpu = 2;
    cfg.smsPerGpu = 4;
    cfg.l2BytesPerGpu = 256 * 1024;
    cfg.dirEntriesPerGpm = 256;
    cfg.protocol = GetParam();
    cfg.checkCoherence = true;
    auto t = wl::make("bfs", 0.05);
    Simulator sim(cfg);
    auto res = sim.run(t); // the checker hmg_panic()s on any violation
    EXPECT_EQ(res.memOps, t.memOps());
    EXPECT_GT(res.stats.get("checker.checks"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolIntegration,
                         ::testing::ValuesIn(kAll),
                         [](const ::testing::TestParamInfo<Protocol> &i) {
                             std::string n = toString(i.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Ordering, CachingBeatsNoCachingOnBroadcastWorkload)
{
    SystemConfig cfg;
    auto t = wl::make("overfeat", 0.5);
    Tick base = runWith(cfg, Protocol::NoRemoteCache, t).cycles;
    Tick hmg = runWith(cfg, Protocol::Hmg, t).cycles;
    Tick ideal = runWith(cfg, Protocol::Ideal, t).cycles;
    EXPECT_LT(hmg, base);
    EXPECT_LE(ideal, base);
    // HMG should be close to ideal on a read-only broadcast workload.
    EXPECT_LT(static_cast<double>(hmg),
              1.35 * static_cast<double>(ideal));
}

TEST(Ordering, HierarchyHelpsOnFineGrainedWorkload)
{
    SystemConfig cfg;
    auto t = wl::make("RNN_FW", 1.0);
    Tick nhcc = runWith(cfg, Protocol::Nhcc, t).cycles;
    Tick hmg = runWith(cfg, Protocol::Hmg, t).cycles;
    // At benchmark scale the hierarchical protocol wins on the
    // fine-grained recurrent workload (Fig. 8's right half).
    EXPECT_LT(hmg, nhcc);
}

TEST(Ordering, HwCoherenceGeneratesInvTrafficOnlyWhenShared)
{
    SystemConfig cfg;
    // Read-only broadcast: essentially no read-write sharing, so the
    // invalidation bandwidth must be tiny relative to data traffic
    // (the Fig. 11 claim).
    auto t = wl::make("overfeat", 0.5);
    auto res = runWith(cfg, Protocol::Hmg, t);
    double inv = res.stats.get("noc.inv.intra_bytes") +
                 res.stats.get("noc.inv.inter_bytes");
    double data = res.stats.get("noc.read_resp.intra_bytes") +
                  res.stats.get("noc.read_resp.inter_bytes");
    EXPECT_LT(inv, 0.05 * data);
}

TEST(Ordering, MstTriggersFalseSharingInvalidations)
{
    SystemConfig cfg;
    auto res = runWith(cfg, Protocol::Hmg, wl::make("mst", 0.05));
    // The adversarial graph workload must actually exercise the
    // store-invalidation path (Fig. 9's tall mst bar).
    EXPECT_GT(res.stats.get("protocol.store_inv_events"), 0.0);
    EXPECT_GT(res.stats.get("protocol.store_inv_lines"), 0.0);
}

TEST(Ordering, DeterministicAcrossRuns)
{
    SystemConfig cfg;
    auto t = wl::make("nekbone", 0.05);
    auto a = runWith(cfg, Protocol::Hmg, t);
    auto b = runWith(cfg, Protocol::Hmg, t);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.get("noc.total_inter_bytes"),
              b.stats.get("noc.total_inter_bytes"));
}

TEST(Sensitivity, MoreInterGpuBandwidthNeverHurts)
{
    SystemConfig cfg;
    auto t = wl::make("alexnet", 0.05);
    cfg.interGpuGBpsPerLink = 100;
    Tick slow = runWith(cfg, Protocol::Hmg, t).cycles;
    cfg.interGpuGBpsPerLink = 400;
    Tick fast = runWith(cfg, Protocol::Hmg, t).cycles;
    EXPECT_LE(fast, slow);
}

TEST(Sensitivity, RoundRobinPlacementCompletes)
{
    SystemConfig cfg;
    cfg.pagePlacement = PagePlacement::RoundRobin;
    auto res = runWith(cfg, Protocol::Hmg, wl::make("comd", 0.05));
    EXPECT_GT(res.cycles, 0u);
}

} // namespace
} // namespace hmg
