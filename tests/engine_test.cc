/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"

namespace hmg
{
namespace
{

TEST(Engine, StartsAtZero)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&]() { order.push_back(3); });
    e.schedule(10, [&]() { order.push_back(1); });
    e.schedule(20, [&]() { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTickFifo)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        e.schedule(5, [&order, i]() { order.push_back(i); });
    e.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedScheduling)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&]() {
        ++fired;
        e.schedule(10, [&]() {
            ++fired;
            e.schedule(10, [&]() { ++fired; });
        });
    });
    e.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, RunUntilStopsEarly)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&]() { ++fired; });
    e.schedule(100, [&]() { ++fired; });
    e.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 1u);
    e.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleAtAbsolute)
{
    Engine e;
    Tick seen = 0;
    e.scheduleAt(42, [&]() { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 42u);
}

TEST(Engine, ZeroDelayRunsAtCurrentTick)
{
    Engine e;
    Tick seen = 1234;
    e.schedule(7, [&]() {
        e.schedule(0, [&]() { seen = e.now(); });
    });
    e.run();
    EXPECT_EQ(seen, 7u);
}

TEST(Engine, CountsEvents)
{
    Engine e;
    for (int i = 0; i < 25; ++i)
        e.schedule(i, []() {});
    e.run();
    EXPECT_EQ(e.eventsExecuted(), 25u);
}

TEST(EngineDeath, PastSchedulingPanics)
{
    Engine e;
    e.schedule(10, [&]() {
        EXPECT_DEATH(e.scheduleAt(5, []() {}), "assertion");
    });
    e.run();
}

} // namespace
} // namespace hmg
