/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 *
 * The (tick, insertion-order) determinism contract is exercised three
 * ways: directly (SameTickFifo and the overflow-boundary tests), across
 * the timing wheel's window-advance machinery (far-future events take
 * the overflow path), and differentially — a randomized dynamically
 * scheduling program is run on the Engine and on a reference
 * priority-queue implementation and must produce identical execution
 * sequences.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/engine.hh"

namespace hmg
{
namespace
{

/** Reference implementation: explicit (tick, seq) priority queue. */
class ReferenceEngine
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }
    void schedule(Tick delay, Callback cb)
    {
        queue_.push(Event{now_ + delay, seq_++, std::move(cb)});
    }
    void run()
    {
        while (!queue_.empty()) {
            auto &top = const_cast<Event &>(queue_.top());
            now_ = top.when;
            Callback cb = std::move(top.cb);
            queue_.pop();
            cb();
        }
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * A randomized program where events spawn 0-2 children at mixed
 * near-future and far-future (overflow-path) delays. Returns the
 * (tick, id) execution sequence.
 */
template <typename EngineT>
std::vector<std::pair<Tick, int>>
runRandomProgram(std::uint64_t seed)
{
    EngineT e;
    Rng rng(seed);
    std::vector<std::pair<Tick, int>> log;
    int next_id = 0;

    std::function<void(int)> fire = [&](int id) {
        log.emplace_back(e.now(), id);
        if (log.size() >= 4000)
            return;
        const auto kids = rng.below(3);
        for (std::uint64_t k = 0; k < kids; ++k) {
            const Tick d = rng.chance(0.15)
                               ? rng.range(15'000, 200'000)
                               : rng.below(1'200);
            const int child = next_id++;
            e.schedule(d, [&fire, child]() { fire(child); });
        }
    };
    for (int i = 0; i < 64; ++i) {
        const int id = next_id++;
        e.schedule(rng.below(50'000), [&fire, id]() { fire(id); });
    }
    e.run();
    return log;
}

TEST(Engine, StartsAtZero)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&]() { order.push_back(3); });
    e.schedule(10, [&]() { order.push_back(1); });
    e.schedule(20, [&]() { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTickFifo)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        e.schedule(5, [&order, i]() { order.push_back(i); });
    e.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedScheduling)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&]() {
        ++fired;
        e.schedule(10, [&]() {
            ++fired;
            e.schedule(10, [&]() { ++fired; });
        });
    });
    e.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, RunUntilStopsEarly)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&]() { ++fired; });
    e.schedule(100, [&]() { ++fired; });
    e.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 1u);
    e.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleAtAbsolute)
{
    Engine e;
    Tick seen = 0;
    e.scheduleAt(42, [&]() { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 42u);
}

TEST(Engine, ZeroDelayRunsAtCurrentTick)
{
    Engine e;
    Tick seen = 1234;
    e.schedule(7, [&]() {
        e.schedule(0, [&]() { seen = e.now(); });
    });
    e.run();
    EXPECT_EQ(seen, 7u);
}

TEST(Engine, CountsEvents)
{
    Engine e;
    for (int i = 0; i < 25; ++i)
        e.schedule(i, []() {});
    e.run();
    EXPECT_EQ(e.eventsExecuted(), 25u);
}

TEST(EngineDeath, PastSchedulingPanics)
{
    Engine e;
    e.schedule(10, [&]() {
        EXPECT_DEATH(e.scheduleAt(5, []() {}), "assertion");
    });
    e.run();
}

// Regression for the determinism contract across the wheel/overflow
// boundary: an event scheduled while its tick was beyond the wheel
// window (overflow path) must still run before a same-tick event
// scheduled later, after the window advanced over that tick.
TEST(Engine, SameTickFifoAcrossOverflowBoundary)
{
    Engine e;
    std::vector<int> order;
    const Tick far = 40'000;   // beyond the wheel window at schedule time
    e.scheduleAt(far, [&]() { order.push_back(1); });
    e.scheduleAt(far - 2'000, [&]() {
        // By now the window has advanced; `far` is inside the wheel and
        // this same-tick event must append *behind* the overflow one.
        e.scheduleAt(far, [&]() { order.push_back(2); });
    });
    e.scheduleAt(far, [&]() { order.push_back(3); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Engine, ManySameTickEventsAcrossOverflowStayFifo)
{
    Engine e;
    std::vector<int> order;
    const Tick far = 1'000'000;
    for (int i = 0; i < 1000; ++i)
        e.scheduleAt(far, [&order, i]() { order.push_back(i); });
    e.run();
    ASSERT_EQ(order.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(e.now(), far);
}

TEST(Engine, SparseFarJumps)
{
    Engine e;
    std::vector<Tick> seen;
    for (Tick t : {Tick{3}, Tick{70'000}, Tick{1} << 20, Tick{1} << 34})
        e.scheduleAt(t, [&seen, &e]() { seen.push_back(e.now()); });
    EXPECT_EQ(e.pending(), 4u);
    e.run();
    EXPECT_EQ(seen, (std::vector<Tick>{3, 70'000, Tick{1} << 20,
                                       Tick{1} << 34}));
    EXPECT_TRUE(e.empty());
}

TEST(Engine, RunUntilAcrossOverflowWindow)
{
    Engine e;
    int fired = 0;
    e.scheduleAt(100'000, [&]() { ++fired; });
    e.scheduleAt(200'000, [&]() { ++fired; });
    e.run(150'000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 1u);
    e.run();
    EXPECT_EQ(fired, 2);
}

// Closures up to Engine::Callback's inline capacity must not touch the
// heap; bigger ones still work via the fallback.
TEST(Engine, CallbackInlineStorage)
{
    struct Small { unsigned char pad[96]; };
    struct Big { unsigned char pad[512]; };
    Engine::Callback small_cb([s = Small{}]() { (void)s; });
    Engine::Callback big_cb([b = Big{}]() { (void)b; });
    EXPECT_TRUE(small_cb.isInline());
    EXPECT_FALSE(big_cb.isInline());

    Engine e;
    int fired = 0;
    e.schedule(1, [&fired, s = Small{}]() { (void)s; ++fired; });
    e.schedule(2, [&fired, b = Big{}]() { (void)b; ++fired; });
    e.run();
    EXPECT_EQ(fired, 2);
}

// The differential check: Engine must replay the exact execution
// sequence of the reference (tick, seq) priority queue on randomized
// dynamically scheduling programs.
TEST(Engine, MatchesReferenceEngineOnRandomPrograms)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xfeedu * 1ull}) {
        const auto expected = runRandomProgram<ReferenceEngine>(seed);
        const auto actual = runRandomProgram<Engine>(seed);
        ASSERT_FALSE(expected.empty());
        EXPECT_EQ(actual, expected) << "seed " << seed;
    }
}

} // namespace
} // namespace hmg
