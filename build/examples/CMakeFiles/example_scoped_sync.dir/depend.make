# Empty dependencies file for example_scoped_sync.
# This may be replaced when dependencies are built.
