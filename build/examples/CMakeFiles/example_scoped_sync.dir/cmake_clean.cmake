file(REMOVE_RECURSE
  "CMakeFiles/example_scoped_sync.dir/scoped_sync.cpp.o"
  "CMakeFiles/example_scoped_sync.dir/scoped_sync.cpp.o.d"
  "example_scoped_sync"
  "example_scoped_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scoped_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
