# Empty dependencies file for example_protocol_compare.
# This may be replaced when dependencies are built.
