file(REMOVE_RECURSE
  "CMakeFiles/example_protocol_compare.dir/protocol_compare.cpp.o"
  "CMakeFiles/example_protocol_compare.dir/protocol_compare.cpp.o.d"
  "example_protocol_compare"
  "example_protocol_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protocol_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
