# Empty dependencies file for hmg.
# This may be replaced when dependencies are built.
