
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/hmg.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/hmg.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/tag_array.cc" "src/CMakeFiles/hmg.dir/cache/tag_array.cc.o" "gcc" "src/CMakeFiles/hmg.dir/cache/tag_array.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/hmg.dir/common/config.cc.o" "gcc" "src/CMakeFiles/hmg.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/hmg.dir/common/log.cc.o" "gcc" "src/CMakeFiles/hmg.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/hmg.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/hmg.dir/common/stats.cc.o.d"
  "/root/repo/src/core/directory.cc" "src/CMakeFiles/hmg.dir/core/directory.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/directory.cc.o.d"
  "/root/repo/src/core/hw_protocol.cc" "src/CMakeFiles/hmg.dir/core/hw_protocol.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/hw_protocol.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/CMakeFiles/hmg.dir/core/protocol.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/protocol.cc.o.d"
  "/root/repo/src/core/release_tracker.cc" "src/CMakeFiles/hmg.dir/core/release_tracker.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/release_tracker.cc.o.d"
  "/root/repo/src/core/simple_protocols.cc" "src/CMakeFiles/hmg.dir/core/simple_protocols.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/simple_protocols.cc.o.d"
  "/root/repo/src/core/sw_protocol.cc" "src/CMakeFiles/hmg.dir/core/sw_protocol.cc.o" "gcc" "src/CMakeFiles/hmg.dir/core/sw_protocol.cc.o.d"
  "/root/repo/src/gpu/cta_scheduler.cc" "src/CMakeFiles/hmg.dir/gpu/cta_scheduler.cc.o" "gcc" "src/CMakeFiles/hmg.dir/gpu/cta_scheduler.cc.o.d"
  "/root/repo/src/gpu/gpm.cc" "src/CMakeFiles/hmg.dir/gpu/gpm.cc.o" "gcc" "src/CMakeFiles/hmg.dir/gpu/gpm.cc.o.d"
  "/root/repo/src/gpu/simulator.cc" "src/CMakeFiles/hmg.dir/gpu/simulator.cc.o" "gcc" "src/CMakeFiles/hmg.dir/gpu/simulator.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/CMakeFiles/hmg.dir/gpu/sm.cc.o" "gcc" "src/CMakeFiles/hmg.dir/gpu/sm.cc.o.d"
  "/root/repo/src/gpu/system.cc" "src/CMakeFiles/hmg.dir/gpu/system.cc.o" "gcc" "src/CMakeFiles/hmg.dir/gpu/system.cc.o.d"
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/hmg.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/hmg.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/hmg.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/hmg.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_state.cc" "src/CMakeFiles/hmg.dir/mem/memory_state.cc.o" "gcc" "src/CMakeFiles/hmg.dir/mem/memory_state.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/hmg.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/hmg.dir/mem/page_table.cc.o.d"
  "/root/repo/src/noc/message.cc" "src/CMakeFiles/hmg.dir/noc/message.cc.o" "gcc" "src/CMakeFiles/hmg.dir/noc/message.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/hmg.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/hmg.dir/noc/network.cc.o.d"
  "/root/repo/src/sim/channel.cc" "src/CMakeFiles/hmg.dir/sim/channel.cc.o" "gcc" "src/CMakeFiles/hmg.dir/sim/channel.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/hmg.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/hmg.dir/sim/engine.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/CMakeFiles/hmg.dir/trace/io.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/io.cc.o.d"
  "/root/repo/src/trace/micro.cc" "src/CMakeFiles/hmg.dir/trace/micro.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/micro.cc.o.d"
  "/root/repo/src/trace/patterns.cc" "src/CMakeFiles/hmg.dir/trace/patterns.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/patterns.cc.o.d"
  "/root/repo/src/trace/profiler.cc" "src/CMakeFiles/hmg.dir/trace/profiler.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/profiler.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/hmg.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/hmg.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/workloads.cc.o.d"
  "/root/repo/src/trace/workloads_graph.cc" "src/CMakeFiles/hmg.dir/trace/workloads_graph.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/workloads_graph.cc.o.d"
  "/root/repo/src/trace/workloads_hpc.cc" "src/CMakeFiles/hmg.dir/trace/workloads_hpc.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/workloads_hpc.cc.o.d"
  "/root/repo/src/trace/workloads_misc.cc" "src/CMakeFiles/hmg.dir/trace/workloads_misc.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/workloads_misc.cc.o.d"
  "/root/repo/src/trace/workloads_ml.cc" "src/CMakeFiles/hmg.dir/trace/workloads_ml.cc.o" "gcc" "src/CMakeFiles/hmg.dir/trace/workloads_ml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
