file(REMOVE_RECURSE
  "libhmg.a"
)
