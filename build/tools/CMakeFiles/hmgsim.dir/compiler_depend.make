# Empty compiler generated dependencies file for hmgsim.
# This may be replaced when dependencies are built.
