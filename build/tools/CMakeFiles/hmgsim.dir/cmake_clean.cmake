file(REMOVE_RECURSE
  "CMakeFiles/hmgsim.dir/hmgsim.cc.o"
  "CMakeFiles/hmgsim.dir/hmgsim.cc.o.d"
  "hmgsim"
  "hmgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
