file(REMOVE_RECURSE
  "CMakeFiles/sm_test.dir/sm_test.cc.o"
  "CMakeFiles/sm_test.dir/sm_test.cc.o.d"
  "sm_test"
  "sm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
