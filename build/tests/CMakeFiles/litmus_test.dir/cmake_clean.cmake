file(REMOVE_RECURSE
  "CMakeFiles/litmus_test.dir/litmus_test.cc.o"
  "CMakeFiles/litmus_test.dir/litmus_test.cc.o.d"
  "litmus_test"
  "litmus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
