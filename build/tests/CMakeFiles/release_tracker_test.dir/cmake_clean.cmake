file(REMOVE_RECURSE
  "CMakeFiles/release_tracker_test.dir/release_tracker_test.cc.o"
  "CMakeFiles/release_tracker_test.dir/release_tracker_test.cc.o.d"
  "release_tracker_test"
  "release_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
