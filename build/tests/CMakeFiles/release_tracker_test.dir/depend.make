# Empty dependencies file for release_tracker_test.
# This may be replaced when dependencies are built.
