file(REMOVE_RECURSE
  "CMakeFiles/release_race_test.dir/release_race_test.cc.o"
  "CMakeFiles/release_race_test.dir/release_race_test.cc.o.d"
  "release_race_test"
  "release_race_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
