file(REMOVE_RECURSE
  "CMakeFiles/micro_test.dir/micro_test.cc.o"
  "CMakeFiles/micro_test.dir/micro_test.cc.o.d"
  "micro_test"
  "micro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
