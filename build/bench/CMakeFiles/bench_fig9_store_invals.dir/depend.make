# Empty dependencies file for bench_fig9_store_invals.
# This may be replaced when dependencies are built.
