file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_store_invals.dir/bench_fig9_store_invals.cc.o"
  "CMakeFiles/bench_fig9_store_invals.dir/bench_fig9_store_invals.cc.o.d"
  "bench_fig9_store_invals"
  "bench_fig9_store_invals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_store_invals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
