file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dir_evictions.dir/bench_fig10_dir_evictions.cc.o"
  "CMakeFiles/bench_fig10_dir_evictions.dir/bench_fig10_dir_evictions.cc.o.d"
  "bench_fig10_dir_evictions"
  "bench_fig10_dir_evictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dir_evictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
