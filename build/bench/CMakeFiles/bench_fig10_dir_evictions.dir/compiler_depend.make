# Empty compiler generated dependencies file for bench_fig10_dir_evictions.
# This may be replaced when dependencies are built.
