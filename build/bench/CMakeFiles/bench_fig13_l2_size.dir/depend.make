# Empty dependencies file for bench_fig13_l2_size.
# This may be replaced when dependencies are built.
