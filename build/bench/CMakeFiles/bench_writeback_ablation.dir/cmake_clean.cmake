file(REMOVE_RECURSE
  "CMakeFiles/bench_writeback_ablation.dir/bench_writeback_ablation.cc.o"
  "CMakeFiles/bench_writeback_ablation.dir/bench_writeback_ablation.cc.o.d"
  "bench_writeback_ablation"
  "bench_writeback_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writeback_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
