# Empty dependencies file for bench_writeback_ablation.
# This may be replaced when dependencies are built.
