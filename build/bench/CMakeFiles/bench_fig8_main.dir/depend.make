# Empty dependencies file for bench_fig8_main.
# This may be replaced when dependencies are built.
