file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_main.dir/bench_fig8_main.cc.o"
  "CMakeFiles/bench_fig8_main.dir/bench_fig8_main.cc.o.d"
  "bench_fig8_main"
  "bench_fig8_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
