# Empty compiler generated dependencies file for bench_fig14_dir_size.
# This may be replaced when dependencies are built.
