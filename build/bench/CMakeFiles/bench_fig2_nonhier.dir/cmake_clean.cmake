file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_nonhier.dir/bench_fig2_nonhier.cc.o"
  "CMakeFiles/bench_fig2_nonhier.dir/bench_fig2_nonhier.cc.o.d"
  "bench_fig2_nonhier"
  "bench_fig2_nonhier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nonhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
