# Empty dependencies file for bench_fig12_intergpu_bw.
# This may be replaced when dependencies are built.
