file(REMOVE_RECURSE
  "CMakeFiles/bench_page_placement_ablation.dir/bench_page_placement_ablation.cc.o"
  "CMakeFiles/bench_page_placement_ablation.dir/bench_page_placement_ablation.cc.o.d"
  "bench_page_placement_ablation"
  "bench_page_placement_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_page_placement_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
