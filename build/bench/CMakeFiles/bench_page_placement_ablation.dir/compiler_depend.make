# Empty compiler generated dependencies file for bench_page_placement_ablation.
# This may be replaced when dependencies are built.
