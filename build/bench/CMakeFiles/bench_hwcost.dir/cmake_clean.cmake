file(REMOVE_RECURSE
  "CMakeFiles/bench_hwcost.dir/bench_hwcost.cc.o"
  "CMakeFiles/bench_hwcost.dir/bench_hwcost.cc.o.d"
  "bench_hwcost"
  "bench_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
