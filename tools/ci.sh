#!/usr/bin/env bash
# The CI wall: lint + determinism lint + tier-1 tests under the default,
# ASan and UBSan presets, a sanitizer pass over the fault-injection
# label, plus an exhaustive hmgcheck run per protocol.
#
# Everything here is hermetic — no network, no installed extras beyond
# cmake/g++ (clang-tidy is picked up when present, skipped when not).
#
# Every stage runs under a hard timeout(1) budget: a stage that hangs —
# a wedged simulation, a deadlocked sanitizer build, a runaway model
# check — kills itself with exit 124 and a named culprit instead of
# eating the CI runner until an operator notices (DESIGN.md §11 applies
# the same philosophy inside the simulator).
set -euo pipefail

cd "$(dirname "$0")/.."

# budget <seconds> <stage name> <command...>
budget() {
    local secs=$1 name=$2
    shift 2
    local rc=0
    timeout --kill-after=30 "$secs" "$@" || rc=$?
    if [ "$rc" -ne 0 ]; then
        if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
            echo "ci: stage '$name' exceeded its ${secs}s budget" >&2
        else
            echo "ci: stage '$name' failed (exit $rc)" >&2
        fi
        exit 1
    fi
}

# require_version <tool> <minimum> <actual>: an installed analyzer
# older than the pin is a hard failure — silently linting with a stale
# rule set is how findings rot — while an absent one is still a loud
# skip (the reference container ships neither).
require_version() {
    local tool=$1 min=$2 actual=$3
    if [ "$(printf '%s\n%s\n' "$min" "$actual" | sort -V | head -1)" \
         != "$min" ]; then
        echo "ci: $tool $actual is older than the pinned minimum $min" >&2
        exit 1
    fi
}

echo "=== lint (clang-tidy) ==="
budget 1800 "clang-tidy lint" tools/run_lint.sh

# Extra static analyzers: required when installed (with pinned minimum
# versions), skipped loudly when the container doesn't ship them.
echo "=== lint (cppcheck, required when installed) ==="
if command -v cppcheck >/dev/null 2>&1; then
    CPPCHECK_VER=$(cppcheck --version | sed 's/^Cppcheck //;s/ .*//')
    require_version cppcheck 2.7 "$CPPCHECK_VER"
    budget 900 "cppcheck" cppcheck --quiet --error-exitcode=1 \
        --enable=warning,portability --inline-suppr \
        --suppress=internalAstError -I src src tools
else
    echo "ci: cppcheck not found; skipping"
fi

echo "=== lint (shellcheck, required when installed) ==="
if command -v shellcheck >/dev/null 2>&1; then
    SHELLCHECK_VER=$(shellcheck --version |
        sed -n 's/^version: //p')
    require_version shellcheck 0.8.0 "$SHELLCHECK_VER"
    budget 120 "shellcheck" shellcheck tools/*.sh tests/*.sh
else
    echo "ci: shellcheck not found; skipping"
fi

for preset in default asan ubsan; do
    echo "=== preset: $preset (configure/build/tier-1 ctest) ==="
    budget 300 "$preset configure" cmake --preset "$preset" >/dev/null
    budget 1200 "$preset build" \
        cmake --build --preset "$preset" -j "$(nproc)" >/dev/null
    budget 900 "$preset ctest" ctest --preset "${preset/default/tier1}"
done

# hmglint needs a built binary, so the static-analysis stages sit after
# the default preset's build (which produced build/tools/hmglint).
echo "=== hmglint: all six analysis families ==="
budget 120 "hmglint" build/tools/hmglint --root .

echo "=== hmglint: protocol liveness + composed deadlock proof ==="
budget 120 "hmglint liveness" build/tools/hmglint --liveness --root .

echo "=== hmglint: LP-safety lockset discipline ==="
budget 120 "hmglint lockset" build/tools/hmglint --lockset --root .

# SARIF artifact for ingestion by code-scanning UIs; the incremental
# warm run right after must replay the report byte-identically from
# the cache the artifact run just populated.
echo "=== hmglint: SARIF artifact + incremental replay ==="
mkdir -p build/artifacts
budget 120 "hmglint sarif" sh -c \
    'build/tools/hmglint --root . --sarif --incremental \
         --cache-file build/artifacts/hmglint.cache \
         > build/artifacts/hmglint.sarif'
budget 120 "hmglint incremental replay" sh -c \
    'build/tools/hmglint --root . --sarif --incremental \
         --cache-file build/artifacts/hmglint.cache \
         > build/artifacts/hmglint.warm.sarif
     cmp build/artifacts/hmglint.sarif build/artifacts/hmglint.warm.sarif'
echo "ci: SARIF artifact at build/artifacts/hmglint.sarif"

echo "=== lint (determinism) ==="
budget 120 "determinism lint" tools/lint_determinism.sh

# The fault-injection smokes (requeue/replay/watchdog paths) under ASan:
# the asan test preset filters the tier1 label, so the `fault` label is
# driven directly against the instrumented build.
echo "=== asan: fault-injection label ==="
budget 900 "asan fault ctest" \
    ctest --test-dir build-asan -L fault --output-on-failure

# The PDES time-window mode is the only threaded code in the simulator;
# TSan the differential/transport tests so a missed mailbox handoff or
# shard lock shows up as a hard failure, not a once-a-month flake.
echo "=== preset: tsan (PDES + transport tests under ThreadSanitizer) ==="
budget 300 "tsan configure" cmake --preset tsan >/dev/null
budget 1200 "tsan build" \
    cmake --build --preset tsan -j "$(nproc)" >/dev/null
budget 900 "tsan ctest" ctest --preset tsan

echo "=== hmgcheck: exhaustive state-space exploration ==="
BUILD_BIN=build/tools/hmgcheck
budget 600 "hmgcheck nhcc" "$BUILD_BIN" --protocol nhcc
budget 600 "hmgcheck hmg" "$BUILD_BIN" --protocol hmg
# The three-level home chain on the minimal 2x2x2 multi-node instance:
# requester, GPU home, node home and system home are four distinct GPMs.
budget 600 "hmgcheck hmg 3-level" "$BUILD_BIN" --protocol hmg --nodes 2

echo "=== hmglint: deadlock freedom at the 64-GPU scale-out shape ==="
budget 120 "hmglint cdg scaleout" build/tools/hmglint --cdg \
    --topology examples/topologies/scaleout_8x8x4.json

echo "=== hmglint: composed protocol∘transport proof per topology ==="
budget 120 "hmglint liveness dgx" build/tools/hmglint --liveness \
    --topology examples/topologies/dgx_4x4.json
budget 120 "hmglint liveness scaleout" build/tools/hmglint --liveness \
    --topology examples/topologies/scaleout_8x8x4.json

echo "ci: PASS"
