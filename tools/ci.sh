#!/usr/bin/env bash
# The CI wall: lint + determinism lint + tier-1 tests under the default,
# ASan and UBSan presets, a sanitizer pass over the fault-injection
# label, plus an exhaustive hmgcheck run per protocol.
#
# Everything here is hermetic — no network, no installed extras beyond
# cmake/g++ (clang-tidy is picked up when present, skipped when not).
#
# Every stage runs under a hard timeout(1) budget: a stage that hangs —
# a wedged simulation, a deadlocked sanitizer build, a runaway model
# check — kills itself with exit 124 and a named culprit instead of
# eating the CI runner until an operator notices (DESIGN.md §11 applies
# the same philosophy inside the simulator).
set -euo pipefail

cd "$(dirname "$0")/.."

# budget <seconds> <stage name> <command...>
budget() {
    local secs=$1 name=$2
    shift 2
    local rc=0
    timeout --kill-after=30 "$secs" "$@" || rc=$?
    if [ "$rc" -ne 0 ]; then
        if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
            echo "ci: stage '$name' exceeded its ${secs}s budget" >&2
        else
            echo "ci: stage '$name' failed (exit $rc)" >&2
        fi
        exit 1
    fi
}

echo "=== lint (clang-tidy) ==="
budget 1800 "clang-tidy lint" tools/run_lint.sh

# Optional extra static analyzers: both are skipped (not failed) when
# the container doesn't ship them, mirroring the clang-tidy policy.
echo "=== lint (cppcheck, optional) ==="
if command -v cppcheck >/dev/null 2>&1; then
    budget 900 "cppcheck" cppcheck --quiet --error-exitcode=1 \
        --enable=warning,portability --inline-suppr \
        --suppress=internalAstError -I src src tools
else
    echo "ci: cppcheck not found; skipping"
fi

echo "=== lint (shellcheck, optional) ==="
if command -v shellcheck >/dev/null 2>&1; then
    budget 120 "shellcheck" shellcheck tools/*.sh
else
    echo "ci: shellcheck not found; skipping"
fi

for preset in default asan ubsan; do
    echo "=== preset: $preset (configure/build/tier-1 ctest) ==="
    budget 300 "$preset configure" cmake --preset "$preset" >/dev/null
    budget 1200 "$preset build" \
        cmake --build --preset "$preset" -j "$(nproc)" >/dev/null
    budget 900 "$preset ctest" ctest --preset "${preset/default/tier1}"
done

# hmglint needs a built binary, so the static-analysis stages sit after
# the default preset's build (which produced build/tools/hmglint).
echo "=== hmglint: tables + cdg + determinism + statkeys ==="
budget 120 "hmglint" build/tools/hmglint --root .

echo "=== lint (determinism) ==="
budget 120 "determinism lint" tools/lint_determinism.sh

# The fault-injection smokes (requeue/replay/watchdog paths) under ASan:
# the asan test preset filters the tier1 label, so the `fault` label is
# driven directly against the instrumented build.
echo "=== asan: fault-injection label ==="
budget 900 "asan fault ctest" \
    ctest --test-dir build-asan -L fault --output-on-failure

# The PDES time-window mode is the only threaded code in the simulator;
# TSan the differential/transport tests so a missed mailbox handoff or
# shard lock shows up as a hard failure, not a once-a-month flake.
echo "=== preset: tsan (PDES + transport tests under ThreadSanitizer) ==="
budget 300 "tsan configure" cmake --preset tsan >/dev/null
budget 1200 "tsan build" \
    cmake --build --preset tsan -j "$(nproc)" >/dev/null
budget 900 "tsan ctest" ctest --preset tsan

echo "=== hmgcheck: exhaustive state-space exploration ==="
BUILD_BIN=build/tools/hmgcheck
budget 600 "hmgcheck nhcc" "$BUILD_BIN" --protocol nhcc
budget 600 "hmgcheck hmg" "$BUILD_BIN" --protocol hmg
# The three-level home chain on the minimal 2x2x2 multi-node instance:
# requester, GPU home, node home and system home are four distinct GPMs.
budget 600 "hmgcheck hmg 3-level" "$BUILD_BIN" --protocol hmg --nodes 2

echo "=== hmglint: deadlock freedom at the 64-GPU scale-out shape ==="
budget 120 "hmglint cdg scaleout" build/tools/hmglint --cdg \
    --topology examples/topologies/scaleout_8x8x4.json

echo "ci: PASS"
