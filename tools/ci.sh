#!/usr/bin/env bash
# The CI wall: lint + determinism lint + tier-1 tests under the default,
# ASan and UBSan presets, plus an exhaustive hmgcheck run per protocol.
#
# Everything here is hermetic — no network, no installed extras beyond
# cmake/g++ (clang-tidy is picked up when present, skipped when not).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== lint (clang-tidy) ==="
tools/run_lint.sh

echo "=== lint (determinism) ==="
tools/lint_determinism.sh

for preset in default asan ubsan; do
    echo "=== preset: $preset (configure/build/tier-1 ctest) ==="
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j "$(nproc)" >/dev/null
    ctest --preset "${preset/default/tier1}"
done

# The PDES time-window mode is the only threaded code in the simulator;
# TSan the differential/transport tests so a missed mailbox handoff or
# shard lock shows up as a hard failure, not a once-a-month flake.
echo "=== preset: tsan (PDES + transport tests under ThreadSanitizer) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$(nproc)" >/dev/null
ctest --preset tsan

echo "=== hmgcheck: exhaustive state-space exploration ==="
BUILD_BIN=build/tools/hmgcheck
"$BUILD_BIN" --protocol nhcc
"$BUILD_BIN" --protocol hmg

echo "ci: PASS"
