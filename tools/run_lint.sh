#!/usr/bin/env bash
# Run clang-tidy over the simulator sources using the repo's .clang-tidy.
#
# Degrades gracefully: toolchains without clang-tidy (the reference
# container ships only g++) get a skip, not a failure, so `tools/ci.sh`
# can call this unconditionally. Pass extra args through to clang-tidy,
# e.g. `tools/run_lint.sh --fix`.
#
# LINT_WERROR=1 escalates every clang-tidy warning to an error, turning
# the advisory wall into a gate (CI sets it on protected branches).
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_lint: $TIDY not found; skipping lint (install clang-tidy to enable)" >&2
    exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -S . -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Lint every first-party translation unit; tests are linted too so the
# wall covers the checker/litmus harnesses.
mapfile -t FILES < <(find src tools tests -name '*.cc' ! -path '*/third_party/*' | sort)

WERROR=()
if [ "${LINT_WERROR:-0}" = "1" ]; then
    WERROR=(--warnings-as-errors='*')
    echo "run_lint: LINT_WERROR=1 — warnings gate as errors"
fi

echo "run_lint: ${#FILES[@]} files under $TIDY"
"$TIDY" -p "$BUILD_DIR" --quiet ${WERROR[@]+"${WERROR[@]}"} "$@" "${FILES[@]}"

# hmglint rides the same wall (and the same LINT_WERROR escalation,
# which it reads from the environment) whenever a built binary exists.
HMGLINT="${HMGLINT:-$BUILD_DIR/tools/hmglint}"
if [ -x "$HMGLINT" ]; then
    echo "run_lint: hmglint ($HMGLINT)"
    "$HMGLINT" --root .
else
    echo "run_lint: $HMGLINT not built; skipping hmglint" >&2
fi
echo "run_lint: clean"
