#!/usr/bin/env bash
# Run clang-tidy over the simulator sources using the repo's .clang-tidy.
#
# Degrades gracefully: toolchains without clang-tidy (the reference
# container ships only g++) get a skip, not a failure, so `tools/ci.sh`
# can call this unconditionally. Pass extra args through to clang-tidy,
# e.g. `tools/run_lint.sh --fix`.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_lint: $TIDY not found; skipping lint (install clang-tidy to enable)" >&2
    exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -S . -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Lint every first-party translation unit; tests are linted too so the
# wall covers the checker/litmus harnesses.
mapfile -t FILES < <(find src tools tests -name '*.cc' ! -path '*/third_party/*' | sort)

echo "run_lint: ${#FILES[@]} files under $TIDY"
"$TIDY" -p "$BUILD_DIR" --quiet "$@" "${FILES[@]}"
echo "run_lint: clean"
