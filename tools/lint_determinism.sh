#!/usr/bin/env bash
# Determinism lint: the simulator must produce bit-identical results for
# a given (config, seed), or the sweep runner's figure caches and the
# hmgcheck counterexample traces stop being reproducible.
#
# The analysis itself lives in hmglint (`hmglint --determinism`,
# src/verify/lint/determinism.cc): a token-level C++ analyzer that
# strips comments and string literals, tracks unordered containers
# across the tree, and flags *iteration* (not just declaration), banned
# entropy sources, float accumulation in hash order, shared mutable
# state in src/sim/, and stale `det-ok:` suppressions. This script is
# the stable entry point CI and the `determinism_lint` ctest call; it
# finds a built hmglint and delegates.
#
# When no hmglint binary exists yet (fresh checkout, no build), the
# original grep-based rules below run as a degraded fallback so the
# lint never silently passes on an unbuilt tree. The fallback checks a
# strict subset of what hmglint checks.
set -euo pipefail

cd "$(dirname "$0")/.."

# --- locate hmglint: $HMGLINT, then the conventional build dirs -------
LINT="${HMGLINT:-}"
if [ -z "$LINT" ]; then
    for cand in build/tools/hmglint build-*/tools/hmglint; do
        if [ -x "$cand" ]; then
            LINT="$cand"
            break
        fi
    done
fi

if [ -n "$LINT" ] && [ -x "$LINT" ]; then
    exec "$LINT" --determinism --root .
fi

echo "determinism lint: no hmglint binary found; using legacy grep rules" >&2

fail=0

# --- rule 1: unordered containers need a det-ok justification ---------
while IFS=: read -r file line _; do
    start=$((line > 4 ? line - 4 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'det-ok'; then
        echo "determinism: $file:$line: std::unordered container without a 'det-ok:' justification" >&2
        fail=1
    fi
done < <(grep -rn 'std::unordered_\(map\|set\)<' src/ --include='*.hh' --include='*.cc' || true)

# --- rule 3: LP-scheduler shared mutable state needs det-ok -----------
# std::recursive_mutex is spelled out: `std::mutex` is not a substring
# of it, and the recursive model-mutex is exactly the kind of state this
# rule exists to force a justification for.
while IFS=: read -r file line _; do
    start=$((line > 4 ? line - 4 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'det-ok'; then
        echo "determinism: $file:$line: shared mutable state (atomic/mutex/thread) in src/sim without a 'det-ok:' justification" >&2
        fail=1
    fi
done < <(grep -rn 'std::atomic\|std::mutex\|std::recursive_mutex\|std::condition_variable\|thread_local\|std::thread\b' \
        src/sim/ --include='*.hh' --include='*.cc' || true)

# --- rule 2: no ambient entropy or wall-clock in the model ------------
if grep -rn 'std::rand\b\|random_device\|time(nullptr)\|::now()' \
        src/ --include='*.hh' --include='*.cc' | grep -v 'det-ok'; then
    echo "determinism: ambient entropy / wall-clock source in src/ (seeded mt19937 only)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "determinism lint: FAIL" >&2
    exit 1
fi
echo "determinism lint: clean (legacy rules)"
