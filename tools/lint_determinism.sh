#!/usr/bin/env bash
# Determinism lint: the simulator must produce bit-identical results for
# a given (config, seed), or the sweep runner's figure caches and the
# hmgcheck counterexample traces stop being reproducible.
#
# Two rule families:
#  1. Every std::unordered_{map,set} declaration must carry a
#     `det-ok:` justification (same line or within the 4 lines above)
#     explaining why hash order cannot leak into simulated behaviour —
#     typically "probed by key, never iterated".
#  2. Wall-clock and ambient entropy sources are banned outright in
#     src/: std::rand, random_device, time(nullptr), chrono ::now.
#     Randomized workloads must draw from the seeded std::mt19937 in
#     the workload config.
#  3. Shared mutable state in the LP scheduler (src/sim/) — atomics,
#     mutexes, condition variables, threads, thread_local — must carry
#     a `det-ok:` justification explaining why it cannot perturb the
#     deterministic modes (serial / --deterministic merge). The
#     time-window mode is allowed bounded relaxations; the other two
#     promise bit-identical results, so every synchronisation primitive
#     needs an argument for why those paths never touch it.
#
# Runs as a tier-1 ctest (`determinism_lint`) and from tools/ci.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- rule 1: unordered containers need a det-ok justification ---------
while IFS=: read -r file line _; do
    start=$((line > 4 ? line - 4 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'det-ok'; then
        echo "determinism: $file:$line: std::unordered container without a 'det-ok:' justification" >&2
        fail=1
    fi
done < <(grep -rn 'std::unordered_\(map\|set\)<' src/ --include='*.hh' --include='*.cc' || true)

# --- rule 3: LP-scheduler shared mutable state needs det-ok -----------
# std::recursive_mutex is spelled out: `std::mutex` is not a substring
# of it, and the recursive model-mutex is exactly the kind of state this
# rule exists to force a justification for.
while IFS=: read -r file line _; do
    start=$((line > 4 ? line - 4 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'det-ok'; then
        echo "determinism: $file:$line: shared mutable state (atomic/mutex/thread) in src/sim without a 'det-ok:' justification" >&2
        fail=1
    fi
done < <(grep -rn 'std::atomic\|std::mutex\|std::recursive_mutex\|std::condition_variable\|thread_local\|std::thread\b' \
        src/sim/ --include='*.hh' --include='*.cc' || true)

# --- rule 2: no ambient entropy or wall-clock in the model ------------
if grep -rn 'std::rand\b\|random_device\|time(nullptr)\|::now()' \
        src/ --include='*.hh' --include='*.cc' | grep -v 'det-ok'; then
    echo "determinism: ambient entropy / wall-clock source in src/ (seeded mt19937 only)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "determinism lint: FAIL" >&2
    exit 1
fi
echo "determinism lint: clean"
