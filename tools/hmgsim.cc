/**
 * @file
 * hmgsim — command-line front-end to the simulator.
 *
 * Run any Table III workload (or every one) under any coherence
 * configuration, overriding the main Table II knobs, and dump either a
 * human-readable summary or the complete statistics set (optionally as
 * CSV for scripting). `--workload all` fans the runs out over a
 * SweepRunner thread pool (`--jobs N`, default every core); output is
 * buffered per workload and printed in suite order, so it is identical
 * for any job count.
 *
 *   hmgsim --workload lstm --protocol hmg
 *   hmgsim --workload all --protocol swnh --scale 0.5 --jobs 8
 *   hmgsim --workload mst --protocol hmg --dir-entries 6144 --stats
 *   hmgsim --workload bfs --protocol nhcc --csv > bfs.csv
 */

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/topology.hh"
#include "gpu/simulator.hh"
#include "sim/sweep.hh"
#include "sim/watchdog.hh"
#include "trace/io.hh"
#include "trace/profiler.hh"
#include "trace/workloads.hh"

namespace
{

struct Options
{
    std::string workload = "lstm";
    std::string protocol = "hmg";
    double scale = 1.0;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    bool full_stats = false;
    bool csv = false;
    bool locality = false;
    std::string save_trace;
    std::string load_trace;
    hmg::SystemConfig cfg;
};

/**
 * Strict numeric flag parsing: the whole string must be consumed, the
 * value must be in range, and failures are a one-line error plus a
 * nonzero exit — never a silent 0 the way atoi() would have it.
 */
std::uint64_t
parseU64(const char *flag, const char *s, std::uint64_t lo = 0,
         std::uint64_t hi = UINT64_MAX)
{
    if (*s == '\0' || *s == '-')
        hmg_fatal("%s wants an unsigned integer, got '%s'", flag, s);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        hmg_fatal("%s wants an unsigned integer, got '%s'", flag, s);
    if (v < lo || v > hi)
        hmg_fatal("%s wants a value in [%llu, %llu], got '%s'", flag,
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi), s);
    return v;
}

double
parseF64(const char *flag, const char *s, double lo, double hi)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (errno == ERANGE || end == s || *end != '\0' || !std::isfinite(v))
        hmg_fatal("%s wants a finite number, got '%s'", flag, s);
    if (v < lo || v > hi)
        hmg_fatal("%s wants a value in [%g, %g], got '%s'", flag, lo, hi,
                  s);
    return v;
}

/** Parse a `--fault-flap GPU:DIR:DOWN:UP` schedule entry. */
hmg::LinkFlap
parseFlap(const char *s)
{
    std::string str(s);
    std::vector<std::string> parts;
    std::size_t pos = 0;
    for (std::size_t colon;
         (colon = str.find(':', pos)) != std::string::npos;
         pos = colon + 1)
        parts.push_back(str.substr(pos, colon - pos));
    parts.push_back(str.substr(pos));
    if (parts.size() != 4)
        hmg_fatal("--fault-flap wants GPU:DIR:DOWN:UP, got '%s'", s);
    hmg::LinkFlap f;
    f.gpu = static_cast<hmg::GpuId>(
        parseU64("--fault-flap GPU", parts[0].c_str(), 0, UINT32_MAX));
    if (parts[1] == "egress")
        f.egress = true;
    else if (parts[1] == "ingress")
        f.egress = false;
    else
        hmg_fatal("--fault-flap DIR wants egress|ingress, got '%s'",
                  parts[1].c_str());
    f.downAt = parseU64("--fault-flap DOWN", parts[2].c_str());
    f.upAt = parseU64("--fault-flap UP", parts[3].c_str());
    return f;
}

hmg::Protocol
parseProtocol(const std::string &s)
{
    if (s == "baseline" || s == "none")
        return hmg::Protocol::NoRemoteCache;
    if (s == "swnh" || s == "sw")
        return hmg::Protocol::SwNonHier;
    if (s == "swh")
        return hmg::Protocol::SwHier;
    if (s == "nhcc")
        return hmg::Protocol::Nhcc;
    if (s == "hmg")
        return hmg::Protocol::Hmg;
    if (s == "ideal")
        return hmg::Protocol::Ideal;
    hmg_fatal("unknown protocol '%s' (baseline|swnh|swh|nhcc|hmg|ideal)",
              s.c_str());
}

void
usage()
{
    std::printf(
        "hmgsim — hierarchical multi-GPU coherence simulator\n\n"
        "  --workload NAME|all     Table III workload key (default lstm)\n"
        "  --protocol P            baseline|swnh|swh|nhcc|hmg|ideal\n"
        "  --scale X               workload iteration scale (default 1.0)\n"
        "  --seed N                trace RNG seed\n"
        "  --jobs N                parallel runs for --workload all\n"
        "                          (default: all cores, or HMG_JOBS)\n"
        "  --lp-jobs N             partition ONE simulation into N\n"
        "                          logical processes (one per GPU max)\n"
        "                          synchronized by conservative time\n"
        "                          windows over the inter-GPU lookahead\n"
        "  --deterministic         with --lp-jobs: single-threaded\n"
        "                          (tick, insertion-order) merge that is\n"
        "                          bit-identical to the serial engine\n"
        "  --topology FILE         load a declarative machine shape\n"
        "                          (JSON: tiers, per-tier link rates and\n"
        "                          latencies, memories); conflicts with\n"
        "                          the individual geometry flags below\n"
        "  --nodes N --gpus N      topology overrides (--gpus is the\n"
        "  --gpms N                machine total; --nodes must divide it)\n"
        "  --l2-mb N               L2 capacity per GPU (MB)\n"
        "  --dir-entries N         directory entries per GPM\n"
        "  --dir-lines N           cache lines per directory entry\n"
        "  --inter-bw GBPS         inter-GPU link bandwidth\n"
        "  --placement P           first-touch|round-robin\n"
        "  --hier-release          hierarchical release marker fan-out\n"
        "  --downgrade             clean-eviction sharer downgrades\n"
        "  --check                 run the runtime coherence checker\n"
        "  --locality              also run the Fig. 3 locality analysis\n"
        "  --stats                 dump every statistic\n"
        "  --csv                   machine-readable stat dump\n"
        "\nfault injection (DESIGN.md §11; all deterministic under "
        "--fault-seed):\n"
        "  --fault-seed N          fault RNG seed (default 1)\n"
        "  --fault-drop P          per-transmission drop probability\n"
        "  --fault-corrupt P       per-transmission corrupt probability\n"
        "                          (CRC-detected, dropped + counted)\n"
        "  --fault-delay P         per-transmission extra-delay prob.\n"
        "  --fault-delay-cycles N  extra latency of a delay fault\n"
        "                          (default 200)\n"
        "  --fault-flap G:DIR:D:U  take GPU G's DIR (egress|ingress)\n"
        "                          inter-GPU link down over cycles\n"
        "                          [D, U); U=0 means forever.\n"
        "                          Repeatable.\n"
        "  --fault-intra           also inject on intra-GPU GPM links\n"
        "  --fault-timeout N       link retry timeout before replay\n"
        "                          (default 64 cycles, exp. backoff)\n"
        "  --watchdog N            hang watchdog no-progress threshold\n"
        "                          in cycles (default: 2M when faults\n"
        "                          are active, otherwise off)\n");
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hmg_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    // A declarative --topology file owns every knob the individual
    // geometry flags also set; mixing the two would silently shadow
    // one with the other, so it is rejected by name instead.
    std::string topology_path;
    std::string geometry_flag;
    auto geom = [&](const std::string &flag) { geometry_flag = flag; };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload")
            o.workload = need(i);
        else if (a == "--protocol")
            o.protocol = need(i);
        else if (a == "--scale") {
            o.scale = parseF64("--scale", need(i), 0.0, 1e6);
            if (o.scale <= 0.0)
                hmg_fatal("--scale wants a positive factor");
        } else if (a == "--seed")
            o.seed = parseU64("--seed", need(i));
        else if (a == "--jobs")
            o.jobs = static_cast<unsigned>(
                parseU64("--jobs", need(i), 1, 4096));
        else if (a == "--lp-jobs")
            o.cfg.lpJobs = static_cast<std::uint32_t>(
                parseU64("--lp-jobs", need(i), 1, 4096));
        else if (a == "--deterministic")
            o.cfg.lpDeterministic = true;
        else if (a == "--topology")
            topology_path = need(i);
        else if (a == "--nodes") {
            o.cfg.numNodes = static_cast<std::uint32_t>(
                parseU64("--nodes", need(i), 1, 1024));
            geom(a);
        } else if (a == "--gpus") {
            o.cfg.numGpus = static_cast<std::uint32_t>(
                parseU64("--gpus", need(i), 1, 1024));
            geom(a);
        } else if (a == "--gpms") {
            o.cfg.gpmsPerGpu = static_cast<std::uint32_t>(
                parseU64("--gpms", need(i), 1, 1024));
            geom(a);
        } else if (a == "--l2-mb") {
            o.cfg.l2BytesPerGpu =
                parseU64("--l2-mb", need(i), 1, 1 << 20) * 1024 * 1024;
            geom(a);
        } else if (a == "--dir-entries") {
            o.cfg.dirEntriesPerGpm = static_cast<std::uint32_t>(
                parseU64("--dir-entries", need(i), 1, UINT32_MAX));
            geom(a);
        } else if (a == "--dir-lines")
            o.cfg.dirLinesPerEntry = static_cast<std::uint32_t>(
                parseU64("--dir-lines", need(i), 1, UINT32_MAX));
        else if (a == "--inter-bw") {
            o.cfg.interGpuGBpsPerLink =
                parseF64("--inter-bw", need(i), 0.0, 1e9);
            if (o.cfg.interGpuGBpsPerLink <= 0.0)
                hmg_fatal("--inter-bw wants a positive bandwidth");
            geom(a);
        } else if (a == "--placement") {
            const std::string p = need(i);
            if (p == "first-touch")
                o.cfg.pagePlacement = hmg::PagePlacement::FirstTouch;
            else if (p == "round-robin")
                o.cfg.pagePlacement = hmg::PagePlacement::RoundRobin;
            else
                hmg_fatal("unknown placement '%s' "
                          "(first-touch|round-robin)",
                          p.c_str());
        } else if (a == "--fault-seed")
            o.cfg.fault.seed = parseU64("--fault-seed", need(i));
        else if (a == "--fault-drop")
            o.cfg.fault.dropProb =
                parseF64("--fault-drop", need(i), 0.0, 1.0);
        else if (a == "--fault-corrupt")
            o.cfg.fault.corruptProb =
                parseF64("--fault-corrupt", need(i), 0.0, 1.0);
        else if (a == "--fault-delay")
            o.cfg.fault.delayProb =
                parseF64("--fault-delay", need(i), 0.0, 1.0);
        else if (a == "--fault-delay-cycles")
            o.cfg.fault.delayCycles =
                parseU64("--fault-delay-cycles", need(i), 1, UINT64_MAX);
        else if (a == "--fault-flap")
            o.cfg.fault.flaps.push_back(parseFlap(need(i)));
        else if (a == "--fault-intra")
            o.cfg.fault.intraGpu = true;
        else if (a == "--fault-timeout")
            o.cfg.fault.retryTimeout =
                parseU64("--fault-timeout", need(i), 1, UINT64_MAX);
        else if (a == "--watchdog")
            o.cfg.watchdogCycles =
                parseU64("--watchdog", need(i), 1, UINT64_MAX);
        else if (a == "--hier-release")
            o.cfg.hierarchicalReleaseFanout = true;
        else if (a == "--downgrade")
            o.cfg.sharerDowngrade = true;
        else if (a == "--check")
            o.cfg.checkCoherence = true;
        else if (a == "--save-trace")
            o.save_trace = need(i);
        else if (a == "--trace")
            o.load_trace = need(i);
        else if (a == "--locality")
            o.locality = true;
        else if (a == "--stats")
            o.full_stats = true;
        else if (a == "--csv")
            o.csv = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hmg_fatal("unknown option '%s'", a.c_str());
        }
    }
    if (!topology_path.empty()) {
        if (!geometry_flag.empty())
            hmg_fatal("--topology conflicts with %s: the topology file "
                      "already declares that knob (edit the file, or "
                      "drop --topology and use the flags)",
                      geometry_flag.c_str());
        hmg::Topology::loadFile(topology_path).applyTo(o.cfg);
    }
    o.cfg.protocol = parseProtocol(o.protocol);
    return o;
}

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    out.append(buf.data(), static_cast<std::size_t>(n));
}

/** Run one workload and return its complete console output. */
std::string
runOne(const Options &o, const std::string &name)
{
    std::string out;
    auto trace = o.load_trace.empty()
                     ? hmg::trace::workloads::make(name, o.scale, o.seed)
                     : hmg::trace::loadFile(o.load_trace);
    const std::string &shown = o.load_trace.empty() ? name : trace.name;
    if (!o.save_trace.empty()) {
        hmg::trace::saveFile(trace, o.save_trace);
        appendf(out, "wrote %llu ops to %s\n",
                static_cast<unsigned long long>(trace.memOps()),
                o.save_trace.c_str());
        return out;
    }
    hmg::Simulator sim(o.cfg);
    auto res = sim.run(trace);

    if (o.csv) {
        appendf(out, "workload,protocol,stat,value\n");
        appendf(out, "%s,%s,cycles,%llu\n", name.c_str(),
                toString(o.cfg.protocol),
                static_cast<unsigned long long>(res.cycles));
        for (const auto &[k, v] : res.stats.all())
            appendf(out, "%s,%s,%s,%.0f\n", name.c_str(),
                    toString(o.cfg.protocol), k.c_str(), v);
        return out;
    }

    appendf(out, "%-12s %-14s %10llu cycles  %8.2f MB interGPU  "
            "%7.0f DRAM reads  %7.0f inv msgs\n",
            shown.c_str(), toString(o.cfg.protocol),
            static_cast<unsigned long long>(res.cycles),
            res.stats.get("noc.total_inter_bytes") / 1e6,
            res.stats.get("total.dram.reads"),
            res.stats.get("protocol.inv_msgs"));

    if (o.locality) {
        auto loc = hmg::trace::analyzeInterGpuLocality(trace, o.cfg);
        appendf(out, "  locality: %llu inter-GPU loads, %.1f%% shared "
                "within a GPU (Fig. 3 metric)\n",
                static_cast<unsigned long long>(loc.interGpuLoads),
                loc.sharedPct());
    }
    if (o.full_stats)
        out += res.stats.toString();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    o.cfg.validate();
    // Reject an unknown workload before any simulation (or sweep
    // fan-out) starts; workloads::info() is fatal on unknown names.
    if (o.workload != "all" && o.load_trace.empty())
        hmg::trace::workloads::info(o.workload);

    if (o.workload == "all") {
        const auto &infos = hmg::trace::workloads::list();
        std::vector<std::string> outputs(infos.size());
        std::vector<std::string> hung(infos.size());
        // --save-trace writes one file per run to the same path; keep
        // that serial so the behaviour stays what it always was.
        hmg::SweepRunner runner(o.save_trace.empty() ? o.jobs : 1);
        runner.forEach(infos.size(), [&](std::size_t i) {
            // A hung cell is isolated: report it degraded with its
            // watchdog diagnostic and let the rest of the sweep finish.
            try {
                outputs[i] = runOne(o, infos[i].name);
            } catch (const hmg::SimHang &h) {
                outputs[i] = infos[i].name + ": DEGRADED — " + h.what() +
                             "\n";
                hung[i] = h.diagnostic();
            }
        });
        bool any_hung = false;
        for (const auto &s : outputs)
            std::fputs(s.c_str(), stdout);
        for (std::size_t i = 0; i < infos.size(); ++i) {
            if (hung[i].empty())
                continue;
            any_hung = true;
            std::fprintf(stderr, "--- %s diagnostic ---\n%s",
                         infos[i].name.c_str(), hung[i].c_str());
        }
        return any_hung ? 3 : 0;
    }
    try {
        std::fputs(runOne(o, o.workload).c_str(), stdout);
    } catch (const hmg::SimHang &h) {
        std::fprintf(stderr, "hmgsim: %s\n%s", h.what(),
                     h.diagnostic().c_str());
        return 3;
    }
    return 0;
}
