/**
 * @file
 * hmgsim — command-line front-end to the simulator.
 *
 * Run any Table III workload (or every one) under any coherence
 * configuration, overriding the main Table II knobs, and dump either a
 * human-readable summary or the complete statistics set (optionally as
 * CSV for scripting). `--workload all` fans the runs out over a
 * SweepRunner thread pool (`--jobs N`, default every core); output is
 * buffered per workload and printed in suite order, so it is identical
 * for any job count.
 *
 *   hmgsim --workload lstm --protocol hmg
 *   hmgsim --workload all --protocol swnh --scale 0.5 --jobs 8
 *   hmgsim --workload mst --protocol hmg --dir-entries 6144 --stats
 *   hmgsim --workload bfs --protocol nhcc --csv > bfs.csv
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/simulator.hh"
#include "sim/sweep.hh"
#include "trace/io.hh"
#include "trace/profiler.hh"
#include "trace/workloads.hh"

namespace
{

struct Options
{
    std::string workload = "lstm";
    std::string protocol = "hmg";
    double scale = 1.0;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    bool full_stats = false;
    bool csv = false;
    bool locality = false;
    std::string save_trace;
    std::string load_trace;
    hmg::SystemConfig cfg;
};

hmg::Protocol
parseProtocol(const std::string &s)
{
    if (s == "baseline" || s == "none")
        return hmg::Protocol::NoRemoteCache;
    if (s == "swnh" || s == "sw")
        return hmg::Protocol::SwNonHier;
    if (s == "swh")
        return hmg::Protocol::SwHier;
    if (s == "nhcc")
        return hmg::Protocol::Nhcc;
    if (s == "hmg")
        return hmg::Protocol::Hmg;
    if (s == "ideal")
        return hmg::Protocol::Ideal;
    hmg_fatal("unknown protocol '%s' (baseline|swnh|swh|nhcc|hmg|ideal)",
              s.c_str());
}

void
usage()
{
    std::printf(
        "hmgsim — hierarchical multi-GPU coherence simulator\n\n"
        "  --workload NAME|all     Table III workload key (default lstm)\n"
        "  --protocol P            baseline|swnh|swh|nhcc|hmg|ideal\n"
        "  --scale X               workload iteration scale (default 1.0)\n"
        "  --seed N                trace RNG seed\n"
        "  --jobs N                parallel runs for --workload all\n"
        "                          (default: all cores, or HMG_JOBS)\n"
        "  --lp-jobs N             partition ONE simulation into N\n"
        "                          logical processes (one per GPU max)\n"
        "                          synchronized by conservative time\n"
        "                          windows over the inter-GPU lookahead\n"
        "  --deterministic         with --lp-jobs: single-threaded\n"
        "                          (tick, insertion-order) merge that is\n"
        "                          bit-identical to the serial engine\n"
        "  --gpus N --gpms N       topology overrides\n"
        "  --l2-mb N               L2 capacity per GPU (MB)\n"
        "  --dir-entries N         directory entries per GPM\n"
        "  --dir-lines N           cache lines per directory entry\n"
        "  --inter-bw GBPS         inter-GPU link bandwidth\n"
        "  --placement P           first-touch|round-robin\n"
        "  --hier-release          hierarchical release marker fan-out\n"
        "  --downgrade             clean-eviction sharer downgrades\n"
        "  --check                 run the runtime coherence checker\n"
        "  --locality              also run the Fig. 3 locality analysis\n"
        "  --stats                 dump every statistic\n"
        "  --csv                   machine-readable stat dump\n");
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hmg_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload")
            o.workload = need(i);
        else if (a == "--protocol")
            o.protocol = need(i);
        else if (a == "--scale")
            o.scale = std::atof(need(i));
        else if (a == "--seed")
            o.seed = std::strtoull(need(i), nullptr, 10);
        else if (a == "--jobs") {
            const int v = std::atoi(need(i));
            if (v <= 0)
                hmg_fatal("--jobs wants a positive integer");
            o.jobs = static_cast<unsigned>(v);
        } else if (a == "--lp-jobs") {
            const int v = std::atoi(need(i));
            if (v <= 0)
                hmg_fatal("--lp-jobs wants a positive integer");
            o.cfg.lpJobs = static_cast<std::uint32_t>(v);
        } else if (a == "--deterministic")
            o.cfg.lpDeterministic = true;
        else if (a == "--gpus")
            o.cfg.numGpus = std::atoi(need(i));
        else if (a == "--gpms")
            o.cfg.gpmsPerGpu = std::atoi(need(i));
        else if (a == "--l2-mb")
            o.cfg.l2BytesPerGpu = std::strtoull(need(i), nullptr, 10) *
                                  1024 * 1024;
        else if (a == "--dir-entries")
            o.cfg.dirEntriesPerGpm = std::atoi(need(i));
        else if (a == "--dir-lines")
            o.cfg.dirLinesPerEntry = std::atoi(need(i));
        else if (a == "--inter-bw")
            o.cfg.interGpuGBpsPerLink = std::atof(need(i));
        else if (a == "--placement")
            o.cfg.pagePlacement =
                std::string(need(i)) == "round-robin"
                    ? hmg::PagePlacement::RoundRobin
                    : hmg::PagePlacement::FirstTouch;
        else if (a == "--hier-release")
            o.cfg.hierarchicalReleaseFanout = true;
        else if (a == "--downgrade")
            o.cfg.sharerDowngrade = true;
        else if (a == "--check")
            o.cfg.checkCoherence = true;
        else if (a == "--save-trace")
            o.save_trace = need(i);
        else if (a == "--trace")
            o.load_trace = need(i);
        else if (a == "--locality")
            o.locality = true;
        else if (a == "--stats")
            o.full_stats = true;
        else if (a == "--csv")
            o.csv = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hmg_fatal("unknown option '%s'", a.c_str());
        }
    }
    o.cfg.protocol = parseProtocol(o.protocol);
    return o;
}

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    out.append(buf.data(), static_cast<std::size_t>(n));
}

/** Run one workload and return its complete console output. */
std::string
runOne(const Options &o, const std::string &name)
{
    std::string out;
    auto trace = o.load_trace.empty()
                     ? hmg::trace::workloads::make(name, o.scale, o.seed)
                     : hmg::trace::loadFile(o.load_trace);
    const std::string &shown = o.load_trace.empty() ? name : trace.name;
    if (!o.save_trace.empty()) {
        hmg::trace::saveFile(trace, o.save_trace);
        appendf(out, "wrote %llu ops to %s\n",
                static_cast<unsigned long long>(trace.memOps()),
                o.save_trace.c_str());
        return out;
    }
    hmg::Simulator sim(o.cfg);
    auto res = sim.run(trace);

    if (o.csv) {
        appendf(out, "workload,protocol,stat,value\n");
        appendf(out, "%s,%s,cycles,%llu\n", name.c_str(),
                toString(o.cfg.protocol),
                static_cast<unsigned long long>(res.cycles));
        for (const auto &[k, v] : res.stats.all())
            appendf(out, "%s,%s,%s,%.0f\n", name.c_str(),
                    toString(o.cfg.protocol), k.c_str(), v);
        return out;
    }

    appendf(out, "%-12s %-14s %10llu cycles  %8.2f MB interGPU  "
            "%7.0f DRAM reads  %7.0f inv msgs\n",
            shown.c_str(), toString(o.cfg.protocol),
            static_cast<unsigned long long>(res.cycles),
            res.stats.get("noc.total_inter_bytes") / 1e6,
            res.stats.get("total.dram.reads"),
            res.stats.get("protocol.inv_msgs"));

    if (o.locality) {
        auto loc = hmg::trace::analyzeInterGpuLocality(trace, o.cfg);
        appendf(out, "  locality: %llu inter-GPU loads, %.1f%% shared "
                "within a GPU (Fig. 3 metric)\n",
                static_cast<unsigned long long>(loc.interGpuLoads),
                loc.sharedPct());
    }
    if (o.full_stats)
        out += res.stats.toString();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    o.cfg.validate();

    if (o.workload == "all") {
        const auto &infos = hmg::trace::workloads::list();
        std::vector<std::string> outputs(infos.size());
        // --save-trace writes one file per run to the same path; keep
        // that serial so the behaviour stays what it always was.
        hmg::SweepRunner runner(o.save_trace.empty() ? o.jobs : 1);
        runner.forEach(infos.size(), [&](std::size_t i) {
            outputs[i] = runOne(o, infos[i].name);
        });
        for (const auto &s : outputs)
            std::fputs(s.c_str(), stdout);
    } else {
        std::fputs(runOne(o, o.workload).c_str(), stdout);
    }
    return 0;
}
