/**
 * @file
 * hmgcheck — exhaustive model checker for the NHCC / HMG protocols.
 *
 * Runs the two verification layers of src/verify/ over the declarative
 * transition tables the timing simulator itself dispatches through:
 *
 *   1. static checks — every table row is ack-free and transient-free
 *      (the paper's Sections IV-B / V-C claims), deterministic and
 *      complete, and the message-class dependency graph is acyclic
 *      (deadlock freedom over the credit-limited transport);
 *   2. exhaustive exploration — breadth-first search over a small
 *      configuration (2 GPUs x 2 GPMs) checking sharer-tracking
 *      soundness, scoped-RC litmus outcomes (MP / SB / WRC) and
 *      dynamic deadlock freedom in every reachable state.
 *
 * The mis-scoped litmus variant (mp_gpu_cross) is expected to FAIL —
 * hmgcheck passes only if the explorer finds its forbidden outcome,
 * demonstrating the checker can detect real scope bugs.
 *
 *   hmgcheck --protocol hmg
 *   hmgcheck --protocol hmg --nodes 2           (3-level home chain)
 *   hmgcheck --protocol nhcc --workload mp_sys --trace
 *   hmgcheck --protocol hmg --seed-bad-row      (counterexample demo)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "verify/lint/cdg.hh"
#include "verify/lint/liveness.hh"
#include "verify/model.hh"
#include "verify/retry_model.hh"
#include "verify/spec.hh"

namespace
{

using namespace hmg;

struct Options
{
    bool hier = true;
    std::uint32_t numNodes = 1;
    std::string workload = "all";
    std::uint32_t dirCap = 1;
    bool seedBadRow = false;
    bool seedRetryBug = false;
    std::uint32_t retryLosses = 3;
    bool showTrace = false;
    bool quiet = false;
};

void
usage()
{
    std::printf(
        "hmgcheck — exhaustive model checker for the coherence tables\n\n"
        "  --protocol P      nhcc|hmg (default hmg)\n"
        "  --nodes N         1 = the paper's two-level home chain;\n"
        "                    2 = a 2-node x 2-GPU x 2-GPM machine whose\n"
        "                    home chain has a live node tier (requires\n"
        "                    --protocol hmg; default 1)\n"
        "  --workload W      free|mp_sys|mp_gpu|mp_gpu_cross|sb_sys|\n"
        "                    wrc_sys|all (default all)\n"
        "  --dir-cap N       directory entries per model node (default 1,\n"
        "                    which forces replacement fans)\n"
        "  --seed-bad-row    corrupt the home store row (test hook): the\n"
        "                    explorer must emit a counterexample\n"
        "  --seed-retry-bug  remove the retry sublayer's in-order filter\n"
        "                    (test hook): the retry check must find a\n"
        "                    duplicate delivery\n"
        "  --retry-losses N  loss budget of the retry-sublayer check\n"
        "                    (default 3)\n"
        "  --trace           print the counterexample trace of failures\n"
        "  --quiet           only the final verdict\n");
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hmg_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--protocol") {
            const std::string p = need(i);
            if (p == "hmg")
                o.hier = true;
            else if (p == "nhcc")
                o.hier = false;
            else
                hmg_fatal("unknown protocol '%s' (nhcc|hmg)", p.c_str());
        } else if (a == "--nodes") {
            o.numNodes = static_cast<std::uint32_t>(std::atoi(need(i)));
        } else if (a == "--workload")
            o.workload = need(i);
        else if (a == "--dir-cap")
            o.dirCap = static_cast<std::uint32_t>(std::atoi(need(i)));
        else if (a == "--seed-bad-row")
            o.seedBadRow = true;
        else if (a == "--seed-retry-bug")
            o.seedRetryBug = true;
        else if (a == "--retry-losses")
            o.retryLosses = static_cast<std::uint32_t>(std::atoi(need(i)));
        else if (a == "--trace")
            o.showTrace = true;
        else if (a == "--quiet")
            o.quiet = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hmg_fatal("unknown option '%s'", a.c_str());
        }
    }
    if (o.numNodes != 1 && o.numNodes != 2)
        hmg_fatal("--nodes must be 1 or 2, got %u", o.numNodes);
    if (o.numNodes == 2 && !o.hier)
        hmg_fatal("--nodes 2 requires --protocol hmg: the flat NHCC "
                  "protocol has no node-home tier to exercise");
    return o;
}

void
printTrace(const verify::MckResult &res)
{
    std::printf("  counterexample (%zu steps):\n", res.trace.size());
    for (std::size_t i = 0; i < res.trace.size(); ++i)
        std::printf("    %2zu. %s\n", i + 1, res.trace[i].c_str());
}

/** Run the static table / message-graph checks (invariant family 1). */
bool
runStatic(const Options &o)
{
    bool ok = true;
    std::size_t count = 0;
    const verify::TransitionTable *tables = verify::allTables(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto problems = verify::checkTable(tables[i]);
        if (!o.quiet)
            std::printf(
                "static  %-14s %2zu rows: %s\n", tables[i].name,
                tables[i].numRows,
                problems.empty()
                    ? "no acks, no transients, deterministic, complete"
                    : "FAILED");
        for (const auto &p : problems) {
            std::printf("  problem: %s\n", p.c_str());
            ok = false;
        }
    }
    auto graph = verify::checkMsgClassGraph();
    if (!o.quiet)
        std::printf("static  msg-class graph: %s\n",
                    graph.empty() ? "acyclic (deadlock-free transport)"
                                  : "FAILED");
    for (const auto &p : graph) {
        std::printf("  problem: %s\n", p.c_str());
        ok = false;
    }

    // Channel-dependency graph over the *physical* credit pools: the
    // msg-class check above proves the protocol layer acyclic; this
    // one proves the transport instance (ports x classes) can't
    // deadlock either. Shared with `hmglint --cdg`.
    verify::lint::LintReport cdg;
    verify::lint::CdgOptions cdgOpts;
    if (o.numNodes == 2) {
        cdgOpts.numGpus = 4;
        cdgOpts.gpmsPerGpu = 2;
        cdgOpts.numNodes = 2;
    }
    verify::lint::analyzeCdg(cdgOpts, cdg);
    if (!o.quiet)
        std::printf("static  channel-dep graph: %s\n",
                    cdg.clean()
                        ? "acyclic over credit pools (deadlock-free)"
                        : "FAILED");
    if (!cdg.clean()) {
        std::printf("%s", cdg.toText().c_str());
        ok = false;
    }

    // Liveness + the composed protocol∘transport proof: derive the
    // transient-state wait-for graph from the tables, prove static
    // livelock freedom, then re-run the CDG with protocol stalls
    // holding their ingress — the full-system dependency graph must
    // stay acyclic before exploration is even worth starting. Shared
    // with `hmglint --liveness`.
    verify::lint::LintReport live;
    verify::lint::LivenessOptions liveOpts;
    liveOpts.numGpus = cdgOpts.numGpus;
    liveOpts.gpmsPerGpu = cdgOpts.gpmsPerGpu;
    liveOpts.numNodes = cdgOpts.numNodes;
    verify::lint::analyzeLiveness(liveOpts, live);
    if (!o.quiet)
        std::printf("static  liveness+composed: %s\n",
                    live.clean()
                        ? "no transient stalls; composed "
                          "protocol-transport graph acyclic"
                        : "FAILED");
    if (!live.clean()) {
        std::printf("%s", live.toText().c_str());
        ok = false;
    }
    return ok;
}

/** Run one exhaustive exploration (invariant families 2-4). */
bool
runWorkload(const Options &o, verify::Workload w)
{
    verify::MckConfig cfg;
    cfg.hier = o.hier;
    cfg.numNodes = o.numNodes;
    if (o.numNodes == 2) {
        // The smallest shape where requester, GPU home, node home and
        // system home are four distinct GPMs (see MckConfig).
        cfg.numGpus = 4;
        cfg.gpmsPerGpu = 2;
    }
    cfg.dirEntriesPerNode = o.dirCap;
    cfg.workload = w;
    cfg.seedBadRow = o.seedBadRow;
    // The mis-scoped litmus must be caught, not survived.
    const bool expectFail =
        (w == verify::Workload::MpGpuCross && cfg.hier) || o.seedBadRow;

    verify::MckResult res = verify::exploreProtocol(cfg);
    const bool pass = expectFail ? !res.ok : res.ok;
    if (!o.quiet || !pass) {
        std::printf("explore %-13s %8llu states %9llu transitions "
                    "%6llu final: %s\n",
                    toString(w),
                    static_cast<unsigned long long>(res.statesExplored),
                    static_cast<unsigned long long>(res.transitionsTaken),
                    static_cast<unsigned long long>(res.finalStates),
                    !res.ok ? (expectFail ? "violation found as expected"
                                          : "FAILED")
                            : (expectFail ? "FAILED (no violation found)"
                                          : "all invariants hold"));
        if (!res.ok) {
            std::printf("  violation: %s\n", res.violation.c_str());
            if (o.showTrace || !pass)
                printTrace(res);
        }
    }
    return pass;
}

/**
 * Model-check the link-level retry sublayer (loss + retransmit
 * nondeterminism) for delivery liveness and no-duplicate-delivery
 * before the engines trust "faults cost time, never messages".
 */
bool
runRetry(const Options &o)
{
    verify::RetryMckConfig cfg;
    cfg.lossBudget = o.retryLosses;
    cfg.seedAcceptAnySeq = o.seedRetryBug;
    const bool expectFail = o.seedRetryBug;

    verify::RetryMckResult res = verify::exploreRetry(cfg);
    const bool pass = expectFail ? !res.ok : res.ok;
    if (!o.quiet || !pass) {
        std::printf("retry   go-back-%u     %8llu states %9llu "
                    "transitions %6llu final: %s\n",
                    cfg.window,
                    static_cast<unsigned long long>(res.statesExplored),
                    static_cast<unsigned long long>(res.transitionsTaken),
                    static_cast<unsigned long long>(res.finalStates),
                    !res.ok
                        ? (expectFail ? "violation found as expected"
                                      : "FAILED")
                        : (expectFail
                               ? "FAILED (no violation found)"
                               : "delivery liveness + exactly-once "
                                 "in-order delivery hold"));
        if (!res.ok) {
            std::printf("  violation: %s\n", res.violation.c_str());
            if (o.showTrace || !pass) {
                std::printf("  counterexample (%zu steps):\n",
                            res.trace.size());
                for (std::size_t i = 0; i < res.trace.size(); ++i)
                    std::printf("    %2zu. %s\n", i + 1,
                                res.trace[i].c_str());
            }
        }
    }
    return pass;
}

verify::Workload
parseWorkload(const std::string &s)
{
    using W = verify::Workload;
    for (W w : {W::Free, W::MpSys, W::MpGpu, W::MpGpuCross, W::SbSys,
                W::WrcSys})
        if (s == toString(w))
            return w;
    hmg_fatal("unknown workload '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    if (!o.quiet)
        std::printf("hmgcheck: protocol %s, %s home chain, %s directory "
                    "entr%s per node\n",
                    o.hier ? "hmg" : "nhcc",
                    o.numNodes > 1 ? "three-level (2x2x2)" : "two-level",
                    o.dirCap == 1 ? "one" : "N",
                    o.dirCap == 1 ? "y" : "ies");

    bool ok = runStatic(o);
    ok = runRetry(o) && ok;

    using W = verify::Workload;
    std::vector<W> runs;
    if (o.workload == "all") {
        runs = {W::Free, W::MpSys, W::MpGpu, W::SbSys, W::WrcSys};
        // The scope-bug demonstration needs GPU-level fences to be
        // weaker than system ones, which only the hierarchical
        // protocol models.
        if (o.hier && !o.seedBadRow)
            runs.push_back(W::MpGpuCross);
    } else {
        runs = {parseWorkload(o.workload)};
    }
    for (W w : runs)
        ok = runWorkload(o, w) && ok;

    std::printf("hmgcheck: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
