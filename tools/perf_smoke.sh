#!/usr/bin/env bash
# Perf-regression smoke: re-measure the timing-wheel event-kernel
# throughput and fail if it drops below 50% of the committed
# BENCH_engine.json baseline.
#
# The 50% bar is deliberately loose — CI hosts vary and the measurement
# is a best-of-three over one second — but it still catches the class of
# regression that matters: an accidental O(n) scan in the hot schedule
# path, a debug assert left on, a closure that started heap-allocating.
#
# Usage: perf_smoke.sh [path-to-bench_engine_microbench]
# Runs as the `perf_smoke` ctest (default preset only, not tier1).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-build/bench/bench_engine_microbench}"
BASELINE_JSON=BENCH_engine.json

if [ ! -x "$BIN" ]; then
    echo "perf_smoke: $BIN not built" >&2
    exit 1
fi

baseline=$(grep -o '"wheel_events_per_sec": *[0-9]*' "$BASELINE_JSON" |
    grep -o '[0-9]*$')
if [ -z "$baseline" ]; then
    echo "perf_smoke: no wheel_events_per_sec in $BASELINE_JSON" >&2
    exit 1
fi

# Hard budget: a hung microbench (the thing this PR's watchdogs exist
# to prevent inside the simulator) must not wedge the CI runner.
measured=$(timeout --kill-after=30 300 \
    "$BIN" --kernel-only --events 1000000 |
    awk '/^wheel_events_per_sec/ { print $2 }')
if [ -z "$measured" ]; then
    echo "perf_smoke: could not parse --kernel-only output" >&2
    exit 1
fi

floor=$((baseline / 2))
echo "perf_smoke: measured $measured ev/s, baseline $baseline ev/s," \
    "floor $floor ev/s"
if [ "${measured%.*}" -lt "$floor" ]; then
    echo "perf_smoke: FAIL — event kernel below 50% of committed baseline" >&2
    exit 1
fi
echo "perf_smoke: PASS"
