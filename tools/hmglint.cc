/**
 * @file
 * hmglint — static analyzer for the HMG repository.
 *
 * The static complement to hmgcheck: instead of exploring reachable
 * protocol states, hmglint proves structural properties of the things
 * the simulator is *built from*, in milliseconds and independent of
 * state-space size. Four analysis families (src/verify/lint/):
 *
 *   tables       spec-table structure: dead/unreachable rows, shadowed
 *                guards, coverage, emitted-message consumers, NHCC vs
 *                HMG divergence on the shared query space;
 *   cdg          Duato channel-dependency graph over the NoC credit
 *                pools x message classes; proves deadlock freedom or
 *                prints the minimal cycle;
 *   determinism  token-level source analysis replacing the old grep
 *                lint: unordered-container iteration, entropy sources,
 *                float accumulation order, sim-thread sync, stale
 *                `det-ok:` suppressions;
 *   statkeys     the stats-key registry: duplicate keys in one scope,
 *                absolute keys colliding with composed namespaces.
 *
 *   hmglint                          # all families, human diagnostics
 *   hmglint --json                   # machine-readable findings
 *   hmglint --determinism --root .   # one family, explicit repo root
 *   hmglint --seed-dead-row          # test hook: must report the row
 *   hmglint --seed-cdg-cycle         # test hook: must print the cycle
 *
 * Exit status: 0 when no errors were found, 1 otherwise (warnings do
 * not gate; `tools/run_lint.sh` escalates them separately).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "common/topology.hh"
#include "verify/lint/cdg.hh"
#include "verify/lint/determinism.hh"
#include "verify/lint/lint.hh"
#include "verify/lint/statkeys.hh"
#include "verify/lint/table_lint.hh"

namespace
{

using namespace hmg::verify;

struct Options
{
    bool tables = false;
    bool cdg = false;
    bool determinism = false;
    bool statkeys = false;
    std::string root = ".";
    std::string topology;
    bool json = false;
    bool quiet = false;
    bool seedDeadRow = false;
    bool seedCdgCycle = false;
};

void
usage()
{
    std::printf(
        "hmglint — static analyzer for protocol tables, transport\n"
        "deadlock freedom, simulator determinism and the stats-key\n"
        "registry\n\n"
        "  --tables          spec-table structural analysis only\n"
        "  --cdg             channel-dependency deadlock check only\n"
        "  --determinism     determinism source analysis only\n"
        "  --statkeys        stats-key registry lint only\n"
        "                    (default: all four families)\n"
        "  --root DIR        repository root for source scans\n"
        "                    (default .)\n"
        "  --topology FILE   build the CDG over the machine shape of a\n"
        "                    topology JSON file instead of the default\n"
        "                    small instance (node tier included when\n"
        "                    the file declares nodes > 1)\n"
        "  --json            machine-readable report on stdout\n"
        "  --quiet           findings only, no summary\n"
        "  --seed-dead-row   test hook: append a guard-shadowed row;\n"
        "                    the table analysis must report it\n"
        "  --seed-cdg-cycle  test hook: model a bounded blocking NIC\n"
        "                    queue; the CDG analysis must print the\n"
        "                    dependency cycle\n");
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hmg_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--tables")
            o.tables = true;
        else if (a == "--cdg")
            o.cdg = true;
        else if (a == "--determinism")
            o.determinism = true;
        else if (a == "--statkeys")
            o.statkeys = true;
        else if (a == "--root")
            o.root = need(i);
        else if (a == "--topology")
            o.topology = need(i);
        else if (a == "--json")
            o.json = true;
        else if (a == "--quiet")
            o.quiet = true;
        else if (a == "--seed-dead-row")
            o.seedDeadRow = true;
        else if (a == "--seed-cdg-cycle")
            o.seedCdgCycle = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hmg_fatal("unknown option '%s'", a.c_str());
        }
    }
    // No family flag selects every family.
    if (!o.tables && !o.cdg && !o.determinism && !o.statkeys)
        o.tables = o.cdg = o.determinism = o.statkeys = true;
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    lint::LintReport report;
    if (o.tables) {
        lint::TableLintOptions topts;
        topts.seedDeadRow = o.seedDeadRow;
        lint::analyzeTables(topts, report);
    }
    if (o.cdg) {
        lint::CdgOptions copts;
        if (!o.topology.empty()) {
            const hmg::Topology t = hmg::Topology::loadFile(o.topology);
            copts.numGpus = t.totalGpus();
            copts.gpmsPerGpu = t.gpmsPerGpu;
            copts.numNodes = t.nodes;
        }
        copts.seedCdgCycle = o.seedCdgCycle;
        lint::analyzeCdg(copts, report);
    }
    if (o.determinism) {
        lint::DeterminismOptions dopts;
        dopts.root = o.root;
        lint::analyzeDeterminism(dopts, report);
    }
    if (o.statkeys) {
        lint::StatKeysOptions sopts;
        sopts.root = o.root;
        lint::analyzeStatKeys(sopts, report);
    }

    if (o.json) {
        std::printf("%s\n", report.toJson().c_str());
    } else {
        const std::string text = report.toText();
        if (!text.empty())
            std::printf("%s", text.c_str());
        if (!o.quiet) {
            for (const auto &[name, value] : report.stats())
                std::printf("# %s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(value));
            std::printf("hmglint: %zu error%s, %zu warning%s — %s\n",
                        report.errors(),
                        report.errors() == 1 ? "" : "s",
                        report.warnings(),
                        report.warnings() == 1 ? "" : "s",
                        report.clean() ? "PASS" : "FAIL");
        }
    }
    return report.clean() ? 0 : 1;
}
