/**
 * @file
 * hmglint — static analyzer for the HMG repository.
 *
 * The static complement to hmgcheck: instead of exploring reachable
 * protocol states, hmglint proves structural properties of the things
 * the simulator is *built from*, in milliseconds and independent of
 * state-space size. Six analysis families (src/verify/lint/):
 *
 *   tables       spec-table structure: dead/unreachable rows, shadowed
 *                guards, coverage, emitted-message consumers, NHCC vs
 *                HMG divergence on the shared query space;
 *   cdg          Duato channel-dependency graph over the NoC credit
 *                pools x message classes; proves deadlock freedom or
 *                prints the minimal cycle;
 *   liveness     transient-state wait-for graph derived from the
 *                tables: static livelock freedom, plus the composed
 *                protocol-transport dependency graph proven acyclic
 *                per topology (the gate new protocol tables pass
 *                before hmgcheck's state explosion);
 *   lockset      LP-safety lock discipline: shard-guarded fields,
 *                atomic memory orders, posted-closure captures, stale
 *                `lp-ok:` suppressions;
 *   determinism  token-level source analysis replacing the old grep
 *                lint: unordered-container iteration, entropy sources,
 *                float accumulation order, sim-thread sync, stale
 *                `det-ok:` suppressions;
 *   statkeys     the stats-key registry: duplicate keys in one scope,
 *                absolute keys colliding with composed namespaces.
 *
 *   hmglint                          # all families, human diagnostics
 *   hmglint --json                   # machine-readable findings
 *   hmglint --sarif                  # SARIF 2.1.0 log on stdout
 *   hmglint --determinism --root .   # one family, explicit repo root
 *   hmglint --incremental            # replay from cache when the
 *                                    # analyzed inputs are unchanged
 *   hmglint --seed-dead-row          # test hook: must report the row
 *   hmglint --seed-cdg-cycle         # test hook: must print the cycle
 *   hmglint --seed-livelock          # test hook: must print the
 *                                    # transient livelock cycle
 *   hmglint --seed-lockset           # test hook: must report the
 *                                    # unlocked shard access
 *
 * Exit status: 0 when no errors were found, 1 otherwise. With
 * LINT_WERROR=1 in the environment, warnings gate the exit status
 * too (the same escalation contract as tools/run_lint.sh).
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/topology.hh"
#include "verify/lint/cdg.hh"
#include "verify/lint/determinism.hh"
#include "verify/lint/lint.hh"
#include "verify/lint/liveness.hh"
#include "verify/lint/lockset.hh"
#include "verify/lint/statkeys.hh"
#include "verify/lint/table_lint.hh"
#include "verify/lint/text.hh"

namespace
{

using namespace hmg::verify;

struct Options
{
    bool tables = false;
    bool cdg = false;
    bool liveness = false;
    bool lockset = false;
    bool determinism = false;
    bool statkeys = false;
    std::string root = ".";
    std::string topology;
    std::uint32_t gpus = 2, gpms = 2, nodes = 1;
    bool json = false;
    bool sarif = false;
    bool quiet = false;
    bool incremental = false;
    std::string cacheFile;
    bool seedDeadRow = false;
    bool seedCdgCycle = false;
    bool seedLivelock = false;
    bool seedLockset = false;
};

void
usage()
{
    std::printf(
        "hmglint — static analyzer for protocol tables, transport\n"
        "deadlock freedom, protocol liveness, LP lock discipline,\n"
        "simulator determinism and the stats-key registry\n\n"
        "  --tables          spec-table structural analysis only\n"
        "  --cdg             channel-dependency deadlock check only\n"
        "  --liveness        transient-state liveness + composed\n"
        "                    protocol-transport deadlock proof only\n"
        "  --lockset         LP-safety lock-discipline analysis only\n"
        "  --determinism     determinism source analysis only\n"
        "  --statkeys        stats-key registry lint only\n"
        "                    (default: all six families)\n"
        "  --root DIR        repository root for source scans\n"
        "                    (default .)\n"
        "  --topology FILE   build the CDG / composed proof over the\n"
        "                    machine shape of a topology JSON file;\n"
        "                    conflicts with --gpus/--gpms/--nodes\n"
        "  --gpus N          GPUs in the analyzed instance (default 2)\n"
        "  --gpms N          GPMs per GPU (default 2)\n"
        "  --nodes N         nodes; > 1 adds the uplink tier\n"
        "                    (default 1)\n"
        "  --json            machine-readable report on stdout\n"
        "  --sarif           SARIF 2.1.0 log on stdout\n"
        "  --quiet           findings only, no summary\n"
        "  --incremental     replay the previous report when no\n"
        "                    analyzed input changed (content-hashed)\n"
        "  --cache-file F    incremental cache location\n"
        "                    (default ROOT/build/hmglint.cache)\n"
        "  --seed-dead-row   test hook: append a guard-shadowed row;\n"
        "                    the table analysis must report it\n"
        "  --seed-cdg-cycle  test hook: model a bounded blocking NIC\n"
        "                    queue; the CDG analysis must print the\n"
        "                    dependency cycle\n"
        "  --seed-livelock   test hook: mark the GPU-home re-fan row\n"
        "                    transient; the liveness analysis must\n"
        "                    print the livelock cycle and the composed\n"
        "                    proof must print the transport cycle\n"
        "  --seed-lockset    test hook: inject an unlocked access to a\n"
        "                    shard-guarded field; the lockset analysis\n"
        "                    must report the site\n");
}

/** Strict numeric flag parsing, mirroring tools/hmgsim.cc. */
std::uint64_t
parseU64(const char *flag, const char *s, std::uint64_t lo = 0,
         std::uint64_t hi = UINT64_MAX)
{
    if (*s == '\0' || *s == '-')
        hmg_fatal("%s wants an unsigned integer, got '%s'", flag, s);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        hmg_fatal("%s wants an unsigned integer, got '%s'", flag, s);
    if (v < lo || v > hi)
        hmg_fatal("%s wants a value in [%llu, %llu], got '%s'", flag,
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi), s);
    return v;
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hmg_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    // A declarative --topology file owns the geometry knobs the
    // individual flags also set; mixing the two would silently shadow
    // one with the other, so it is rejected by name instead — the
    // same contract as tools/hmgsim.cc.
    std::string geometry_flag;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--tables")
            o.tables = true;
        else if (a == "--cdg")
            o.cdg = true;
        else if (a == "--liveness")
            o.liveness = true;
        else if (a == "--lockset")
            o.lockset = true;
        else if (a == "--determinism")
            o.determinism = true;
        else if (a == "--statkeys")
            o.statkeys = true;
        else if (a == "--root")
            o.root = need(i);
        else if (a == "--topology")
            o.topology = need(i);
        else if (a == "--gpus") {
            geometry_flag = a;
            o.gpus = static_cast<std::uint32_t>(
                parseU64("--gpus", need(i), 1, 1024));
        } else if (a == "--gpms") {
            geometry_flag = a;
            o.gpms = static_cast<std::uint32_t>(
                parseU64("--gpms", need(i), 1, 1024));
        } else if (a == "--nodes") {
            geometry_flag = a;
            o.nodes = static_cast<std::uint32_t>(
                parseU64("--nodes", need(i), 1, 1024));
        } else if (a == "--json")
            o.json = true;
        else if (a == "--sarif")
            o.sarif = true;
        else if (a == "--quiet")
            o.quiet = true;
        else if (a == "--incremental")
            o.incremental = true;
        else if (a == "--cache-file")
            o.cacheFile = need(i);
        else if (a == "--seed-dead-row")
            o.seedDeadRow = true;
        else if (a == "--seed-cdg-cycle")
            o.seedCdgCycle = true;
        else if (a == "--seed-livelock")
            o.seedLivelock = true;
        else if (a == "--seed-lockset")
            o.seedLockset = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hmg_fatal("unknown option '%s'", a.c_str());
        }
    }
    if (!o.topology.empty() && !geometry_flag.empty())
        hmg_fatal("--topology conflicts with %s: the topology file "
                  "already declares that knob (edit the file, or "
                  "drop --topology and use the flags)",
                  geometry_flag.c_str());
    if (o.json && o.sarif)
        hmg_fatal("--json conflicts with --sarif: pick one output "
                  "format per run");
    // No family flag selects every family.
    if (!o.tables && !o.cdg && !o.liveness && !o.lockset &&
        !o.determinism && !o.statkeys)
        o.tables = o.cdg = o.liveness = o.lockset = o.determinism =
            o.statkeys = true;
    if (o.cacheFile.empty())
        o.cacheFile = o.root + "/build/hmglint.cache";
    return o;
}

// ------------------------------------------------------------------
// Incremental cache: content-hash everything an analysis can read —
// the source tree, the topology file, the option vector, and this
// binary's build stamp (the compiled-in tables/classes change with
// it) — and replay the stored report byte-identically on a hit.
// ------------------------------------------------------------------

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
cacheKey(const Options &o)
{
    std::uint64_t h = 14695981039346656037ULL;
    auto mix = [&](const std::string &s) { h = fnv1a(s + '\0', h); };
    mix("hmglint-cache-v1");
    mix(__DATE__ " " __TIME__); // binary identity: tables are data
    for (const bool b : {o.tables, o.cdg, o.liveness, o.lockset,
                         o.determinism, o.statkeys, o.json, o.sarif,
                         o.quiet, o.seedDeadRow, o.seedCdgCycle,
                         o.seedLivelock, o.seedLockset})
        mix(b ? "1" : "0");
    mix(o.root);
    mix(o.topology);
    mix(std::to_string(o.gpus) + "," + std::to_string(o.gpms) + "," +
        std::to_string(o.nodes));
    const char *we = std::getenv("LINT_WERROR");
    mix(we ? we : "");
    if (!o.topology.empty()) {
        std::ifstream in(o.topology, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        mix(bytes);
    }
    std::vector<lint::SourceFile> files;
    std::string error;
    if (lint::loadSourceTree(o.root, files, error)) {
        for (const lint::SourceFile &f : files) {
            mix(f.rel);
            for (const std::string &line : f.raw)
                mix(line);
        }
    } else {
        mix("no-src:" + error);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Replay a cached report. @return true on a key hit. */
bool
replayCache(const Options &o, const std::string &key, int &exitCode)
{
    std::ifstream in(o.cacheFile, std::ios::binary);
    if (!in)
        return false;
    std::string header, exitLine;
    if (!std::getline(in, header) || header != "hmglint-cache-v1 " + key)
        return false;
    if (!std::getline(in, exitLine) ||
        exitLine.rfind("exit ", 0) != 0)
        return false;
    exitCode = std::atoi(exitLine.c_str() + 5);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fprintf(stderr, "hmglint: incremental cache hit (%s)\n",
                 o.cacheFile.c_str());
    return true;
}

void
storeCache(const Options &o, const std::string &key,
           const std::string &out, int exitCode)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path p(o.cacheFile);
    if (p.has_parent_path())
        fs::create_directories(p.parent_path(), ec);
    std::ofstream f(o.cacheFile, std::ios::binary | std::ios::trunc);
    if (!f) {
        std::fprintf(stderr,
                     "hmglint: cannot write cache file %s\n",
                     o.cacheFile.c_str());
        return;
    }
    f << "hmglint-cache-v1 " << key << "\n"
      << "exit " << exitCode << "\n"
      << out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    const bool werror = [] {
        const char *we = std::getenv("LINT_WERROR");
        return we && std::strcmp(we, "1") == 0;
    }();

    std::string key;
    if (o.incremental) {
        key = cacheKey(o);
        int exitCode = 0;
        if (replayCache(o, key, exitCode))
            return exitCode;
    }

    // Geometry: a topology file owns the instance shape, otherwise
    // the (possibly flag-overridden) default small instance.
    std::uint32_t gpus = o.gpus, gpms = o.gpms, nodes = o.nodes;
    if (!o.topology.empty()) {
        const hmg::Topology t = hmg::Topology::loadFile(o.topology);
        gpus = t.totalGpus();
        gpms = t.gpmsPerGpu;
        nodes = t.nodes;
    }

    lint::LintReport report;
    if (o.tables) {
        lint::TableLintOptions topts;
        topts.seedDeadRow = o.seedDeadRow;
        lint::analyzeTables(topts, report);
    }
    if (o.cdg) {
        lint::CdgOptions copts;
        copts.numGpus = gpus;
        copts.gpmsPerGpu = gpms;
        copts.numNodes = nodes;
        copts.seedCdgCycle = o.seedCdgCycle;
        lint::analyzeCdg(copts, report);
    }
    if (o.liveness) {
        lint::LivenessOptions lopts;
        lopts.numGpus = gpus;
        lopts.gpmsPerGpu = gpms;
        lopts.numNodes = nodes;
        lopts.seedLivelock = o.seedLivelock;
        lint::analyzeLiveness(lopts, report);
    }
    if (o.lockset) {
        lint::LocksetOptions lopts;
        lopts.root = o.root;
        lopts.seedLockset = o.seedLockset;
        lint::analyzeLockset(lopts, report);
    }
    if (o.determinism) {
        lint::DeterminismOptions dopts;
        dopts.root = o.root;
        lint::analyzeDeterminism(dopts, report);
    }
    if (o.statkeys) {
        lint::StatKeysOptions sopts;
        sopts.root = o.root;
        lint::analyzeStatKeys(sopts, report);
    }

    const bool pass =
        report.clean() && (!werror || report.warnings() == 0);

    // Render the whole report to one string: it is what the terminal
    // sees, what the cache replays, and what the byte-identity tests
    // compare — one source of truth for all three.
    std::string out;
    if (o.json) {
        out = report.toJson() + "\n";
    } else if (o.sarif) {
        out = report.toSarif();
    } else {
        out = report.toText();
        if (!o.quiet) {
            for (const auto &[name, value] : report.stats())
                out += "# " + name + " " + std::to_string(value) + "\n";
            out += "hmglint: " + std::to_string(report.errors()) +
                   " error" + (report.errors() == 1 ? "" : "s") +
                   ", " + std::to_string(report.warnings()) +
                   " warning" + (report.warnings() == 1 ? "" : "s") +
                   " — " + (pass ? "PASS" : "FAIL") + "\n";
        }
    }

    const int exitCode = pass ? 0 : 1;
    if (o.incremental)
        storeCache(o, key, out, exitCode);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return exitCode;
}
